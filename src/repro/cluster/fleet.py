"""The fleet simulator: N nodes (of possibly mixed hardware) on one clock.

``Cluster`` composes the pieces — a :class:`~repro.cluster.placement.ModelPlacement`
deciding which nodes can serve which model, a :class:`~repro.cluster.router.Router`
deciding where each arrival goes, and :class:`~repro.cluster.node.ClusterNode`
instances that batch and serve locally.  The simulation is a deterministic
discrete-event loop over two event kinds: request arrivals and
node-batch-finish events; at equal timestamps arrivals are processed first
(matching the single-node engine, which drains arrivals up to the clock
before dispatching), and finish events tie-break by node id.

A one-node cluster reproduces :meth:`OnlineServingEngine.run` exactly —
the fleet layer adds routing and placement, not new service semantics.
Heterogeneity is additive the same way: passing ``specs`` (one
:class:`~repro.serving.NodeSpec` per node) swaps each node's hardware
latency model, and a fleet of all-StepStone specs reproduces the
homogeneous cluster request for request.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster.node import ClusterNode
from repro.cluster.placement import (
    DEFAULT_NODE_CAPACITY_BYTES,
    ModelPlacement,
)
from repro.cluster.router import Router, make_router
from repro.serving.engine import (
    POLICIES,
    CompletedRequest,
    FailedRequest,
    OnlineServingEngine,
    RejectedRequest,
    Request,
    ServingReport,
)
from repro.serving.nodespec import STEPSTONE_NODE, NodeSpec
from repro.sim.failures import FailureTrace
from repro.sim.kernel import DiscreteEventKernel, Event, EventKind
from repro.sim.metrics import nearest_rank, window_latencies
from repro.sim.stats import MetricsRecorder, RecordingModeError

__all__ = ["Cluster", "ClusterReport"]


@dataclass
class ClusterReport:
    """Fleet-level outcome of one simulated run.

    In ``record="full"`` runs (the default) every per-request record is
    reachable through the node reports and fleet-wide statistics are
    exact.  In ``record="streaming"`` runs the ``stats`` recorder — the
    parent every node recorder chained to — answers fleet-wide
    percentiles from sketches, and the per-request list properties raise
    :class:`~repro.sim.stats.RecordingModeError`.
    """

    policy: str
    router: str
    node_reports: List[ServingReport]
    sim_end_s: float = 0.0
    #: Arrival-window end: when the last request arrived (offered load
    #: stops here; the remaining simulated time only drains backlog).
    last_arrival_s: float = 0.0
    #: Per-node busy seconds (service time integrated over the run).
    node_busy_s: List[float] = field(default_factory=list)
    #: Hardware spec per node — present for every ``Cluster.run`` report;
    #: ``None`` only on hand-built reports, where cost is undefined.
    specs: Optional[List[NodeSpec]] = None
    #: Requests that arrived while every replica of their model was down
    #: (failure injection); empty without a failure trace, and kept only
    #: in full-recording runs (streaming runs count them instead).
    dropped: List[FailedRequest] = field(default_factory=list)
    #: Unrouted-arrival drops counted without records (streaming runs).
    n_dropped: int = 0
    #: Kernel events this run processed (simulator diagnostics).
    events_processed: int = 0
    #: The fleet-level recorder of a streaming run (``None`` on full runs,
    #: where exact statistics come from the per-request records instead).
    stats: Optional[MetricsRecorder] = None
    _lat_memo: tuple = field(
        default=(-1, ()), repr=False, compare=False
    )

    @property
    def record(self) -> str:
        """The recording mode this report was accumulated under."""
        if self.stats is not None:
            return self.stats.record
        return "full"

    @property
    def _streaming(self) -> bool:
        return self.stats is not None and self.stats.record == "streaming"

    @property
    def completed(self) -> List[CompletedRequest]:
        """Every completed request across the fleet (node order;
        ``record="full"`` only)."""
        return [c for rep in self.node_reports for c in rep.completed]

    @property
    def rejected(self) -> List[RejectedRequest]:
        """Every admission-rejected request across the fleet (node order;
        ``record="full"`` only)."""
        return [r for rep in self.node_reports for r in rep.rejected]

    @property
    def failed(self) -> List[FailedRequest]:
        """Every request lost to node failures: queue drops and in-flight
        losses (node order), plus arrivals no surviving replica could
        take (``record="full"`` only)."""
        return [
            f for rep in self.node_reports for f in rep.failed
        ] + self.dropped

    @property
    def dropped_count(self) -> int:
        """Arrivals dropped with every replica down (works in both modes)."""
        return len(self.dropped) + self.n_dropped

    @property
    def rejected_count(self) -> int:
        """Fleet-wide admission rejections (works in both modes)."""
        return sum(rep.rejected_count for rep in self.node_reports)

    @property
    def failed_count(self) -> int:
        """Fleet-wide failure losses, unrouted drops included (both modes)."""
        return (
            sum(rep.failed_count for rep in self.node_reports)
            + self.dropped_count
        )

    @property
    def offered(self) -> int:
        """Total requests the fleet saw (completed + rejected + failed)."""
        return sum(rep.offered for rep in self.node_reports) + self.dropped_count

    @property
    def served(self) -> int:
        """Total completed requests."""
        return sum(rep.served for rep in self.node_reports)

    @property
    def latencies_s(self) -> List[float]:
        """Fleet-wide completed latencies, ascending (memoized per node
        mutation; ``record="full"`` only)."""
        if self._streaming:
            raise RecordingModeError(
                "the fleet latency list is unavailable in streaming mode — "
                "use latency_percentile(); re-run with record='full' for "
                "per-request records"
            )
        # Memo key covers every node list's mutation counter, so a
        # same-length in-place edit still invalidates (the bug the
        # len-only memo had).
        key = (
            self.served,
            sum(rep.completed.version for rep in self.node_reports),
        )
        version, memo = self._lat_memo
        if version != key:
            memo = sorted(c.latency_s for c in self.completed)
            self._lat_memo = (key, memo)
        return memo

    def latency_percentile(self, q: float) -> float:
        """Percentile of fleet-wide completed latency: exact nearest-rank
        on full runs, sketch estimate on streaming runs.

        Args:
            q: Percentile in (0, 100].

        Returns:
            Latency seconds (NaN when nothing completed).
        """
        if self._streaming:
            return self.stats.percentile(q)
        return nearest_rank(self.latencies_s, q)

    def window_percentile(self, q: float, start_s: float, end_s: float) -> float:
        """Fleet-wide latency percentile over completions finishing in
        ``[start_s, end_s)``; NaN when the window saw none.  Exact on
        full runs, answered from the fleet recorder's window ring on
        streaming runs."""
        if self._streaming:
            return self.stats.window_percentile(q, start_s, end_s)
        return nearest_rank(window_latencies(self.completed, start_s, end_s), q)

    @property
    def p50_s(self) -> float:
        """Median fleet latency, seconds."""
        return self.latency_percentile(50)

    @property
    def p99_s(self) -> float:
        """99th-percentile fleet latency, seconds."""
        return self.latency_percentile(99)

    @property
    def throughput_rps(self) -> float:
        """Completions per simulated second, drain included."""
        if self.sim_end_s <= 0:
            return 0.0
        return self.served / self.sim_end_s

    @property
    def goodput_rps(self) -> float:
        """Sustained rate: completions per second of the offered arrival
        window.  Under overload with SLO shedding this is the comparable
        number across configurations — ``throughput_rps`` divides by the
        drain tail too, which *punishes* a fleet for admitting more work
        right before the window closes."""
        if self.last_arrival_s <= 0:
            return 0.0
        return self.served / self.last_arrival_s

    @property
    def availability(self) -> float:
        """Fraction of offered requests that completed — the goodput
        share surviving admission shedding *and* failure losses (1.0 for
        an empty run)."""
        if self.offered == 0:
            return 1.0
        return self.served / self.offered

    @property
    def mean_utilization(self) -> float:
        """Mean fraction of the run each node spent serving a batch."""
        if self.sim_end_s <= 0 or not self.node_busy_s:
            return 0.0
        return sum(self.node_busy_s) / (self.sim_end_s * len(self.node_busy_s))

    # ------------------------------------------------------------------ #
    # Cost and energy (heterogeneous-fleet economics)
    # ------------------------------------------------------------------ #

    @property
    def hourly_cost(self) -> float:
        """Fleet price in $/hr (NaN when node specs are unknown)."""
        if self.specs is None:
            return math.nan
        return sum(s.hourly_cost for s in self.specs)

    def energy_j(self) -> float:
        """Fleet energy over the run: every node pays its spec's idle
        power for the full horizon and the busy increment while serving
        (NaN when node specs are unknown)."""
        if self.specs is None:
            return math.nan
        busy = self.node_busy_s or [0.0] * len(self.specs)
        return sum(
            spec.energy_j(self.sim_end_s, b) for spec, b in zip(self.specs, busy)
        )

    @property
    def joules_per_request(self) -> float:
        """Fleet energy divided by completed requests (NaN when nothing
        completed or specs are unknown)."""
        if self.specs is None or self.served == 0:
            return math.nan
        return self.energy_j() / self.served

    def served_per_node(self) -> List[int]:
        """Completed-request count per node, node order."""
        return [rep.served for rep in self.node_reports]

    def summary(self) -> str:
        """One-line fleet summary (counts, percentiles, rate, util)."""
        cost = ""
        if self.specs is not None:
            cost = f", ${self.hourly_cost:.2f}/hr"
        return (
            f"{len(self.node_reports)}x{self.policy}/{self.router}: "
            f"{self.served} served, {self.rejected_count} rejected | "
            f"p50 {self.p50_s * 1e3:.2f} ms, p99 {self.p99_s * 1e3:.2f} ms | "
            f"{self.goodput_rps:.0f} req/s, "
            f"util {self.mean_utilization * 100:.0f}%{cost}"
        )


class Cluster:
    """A routed fleet of serving nodes sharing one latency model.

    Args:
        n_nodes: Fleet size; may be omitted when ``specs`` is given.
        policy: StepStone dispatch policy for StepStone nodes (cpu/gpu
            nodes run their only dispatch regardless).
        router: Routing policy name or a :class:`Router` instance.
        engine: Shared latency model; a default engine over the full model
            zoo when omitted.
        placement: Weight placement; defaults to a greedy capacity-aware
            plan over the engine's models.
        replication: Replicas per model for the default placement.
        capacity_bytes: Per-node weight budget for the default placement
            on a homogeneous fleet (ignored when ``specs`` is given —
            each spec's ``memory_bytes`` is used instead).
        max_batch: Per-node batch cap; defaults to the engine's.
        specs: One :class:`~repro.serving.NodeSpec` per node for a
            heterogeneous fleet; ``None`` means all-StepStone (the
            homogeneous fleet this class always simulated).
        record: ``"full"`` keeps exact per-request records (the default
            and the golden-trace contract); ``"streaming"`` accumulates
            flat-memory aggregates for scale runs.
        window_s: Auto-roll width of the streaming recorders' window
            rings (ignored in full mode).
    """

    def __init__(
        self,
        n_nodes: Optional[int] = None,
        policy: str = "hybrid",
        router: "Router | str" = "least-loaded",
        engine: Optional[OnlineServingEngine] = None,
        placement: Optional[ModelPlacement] = None,
        replication: int = 1,
        capacity_bytes: float = DEFAULT_NODE_CAPACITY_BYTES,
        max_batch: Optional[int] = None,
        specs: Optional[Sequence[NodeSpec]] = None,
        record: str = "full",
        window_s: Optional[float] = None,
    ) -> None:
        if record not in ("full", "streaming"):
            raise ValueError(
                f"unknown record mode {record!r}; choose 'full' or 'streaming'"
            )
        self.record = record
        self.window_s = window_s
        if specs is not None:
            specs = list(specs)
            if not specs:
                raise ValueError("specs must name at least one node")
            if n_nodes is None:
                n_nodes = len(specs)
            elif n_nodes != len(specs):
                raise ValueError(
                    f"n_nodes={n_nodes} disagrees with {len(specs)} specs"
                )
            plan_capacity: "float | List[float]" = [s.memory_bytes for s in specs]
        else:
            if n_nodes is None:
                raise ValueError("need n_nodes or specs")
            specs = [STEPSTONE_NODE] * n_nodes
            plan_capacity = capacity_bytes
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        self.engine = engine or OnlineServingEngine()
        self.policy = policy
        self.specs: List[NodeSpec] = specs
        self.router = make_router(router) if isinstance(router, str) else router
        self.placement = placement or ModelPlacement.plan(
            self.engine.models,
            n_nodes=n_nodes,
            replication=replication,
            capacity_bytes=plan_capacity,
        )
        self.nodes = [
            ClusterNode(
                node_id=nid,
                engine=self.engine,
                policy=policy,
                models=set(self.placement.models_on(nid)),
                max_batch=max_batch,
                spec=specs[nid],
            )
            for nid in range(n_nodes)
        ]

    def replicas_for(self, model: str) -> List[ClusterNode]:
        """Nodes hosting ``model``, placement order (primary first)."""
        return [self.nodes[nid] for nid in self.placement.nodes_for(model)]

    def _fresh_nodes(
        self,
        fleet_stats: Optional[MetricsRecorder] = None,
        fast: bool = False,
    ) -> None:
        for node in self.nodes:
            node.queue = []
            node.in_flight = []
            node.busy_until = 0.0
            node.busy_s = 0.0
            node.epoch = 0
            if fast:
                from repro.sim.fast import FastRecorder

                stats: MetricsRecorder = FastRecorder()
            else:
                stats = MetricsRecorder(
                    record=self.record,
                    window_s=self.window_s,
                    parent=fleet_stats,
                )
            node.report = ServingReport(policy=node.policy, stats=stats)

    def run(
        self,
        requests: Iterable[Request],
        failures: Optional[FailureTrace] = None,
        obs=None,
        fast: bool = False,
    ) -> ClusterReport:
        """Serve an arrival-ordered stream across the fleet.

        Args:
            requests: Timestamped requests (sorted internally).
            failures: Optional outage schedule — a down node loses its
                queue and in-flight batch (recorded as failed requests)
                and leaves the routing set until it recovers; an
                arrival whose every replica is down is dropped at the
                door.
            obs: Optional :class:`~repro.obs.RunObserver` — nodes emit
                ``queued``/``serve``/``rejected``/``failed`` request
                spans and per-dispatch ``batch`` spans, and the kernel
                self-profiles when a profiler is attached.  Default off.
            fast: Opt into the :mod:`repro.sim.fast` struct-of-arrays
                path (bit-identical reports).  Engages for full
                recording without span tracing on a builtin router;
                falls back to the event-at-a-time path otherwise.

        Returns:
            The fleet-wide :class:`ClusterReport`.
        """
        spans = obs.spans if obs is not None else None
        down: set = set()
        _fast = None
        chooser = None
        if fast:
            if self.record != "full":
                fb_reason = "streaming-record"
            elif spans is not None:
                fb_reason = "spans"
            else:
                from repro.sim import fast as _fast_mod

                chooser = _fast_mod.make_chooser(
                    self.router,
                    lambda m: [
                        n for n in self.replicas_for(m) if n.node_id not in down
                    ],
                )
                if chooser is not None:
                    _fast = _fast_mod
                    fb_reason = None
                else:
                    fb_reason = "custom-router"
            if _fast is None:
                from repro.obs.telemetry import record_fast_fallback

                record_fast_fallback("cluster", fb_reason, obs)
        fleet_stats: Optional[MetricsRecorder] = None
        if self.record == "streaming":
            fleet_stats = MetricsRecorder(
                record="streaming", window_s=self.window_s
            )
        self._fresh_nodes(fleet_stats, fast=_fast is not None)
        for node in self.nodes:
            node.obs_spans = spans
        self.router.reset()
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.req_id))
        last_arrival = ordered[-1].arrival_s if ordered else 0.0
        kernel = DiscreteEventKernel()
        if _fast is None:
            kernel.preload(
                Event(r.arrival_s, EventKind.ARRIVAL, i, payload=r)
                for i, r in enumerate(ordered)
            )
        if failures is not None:
            failures.schedule_on(kernel)
        dropped: List[FailedRequest] = []
        n_dropped = 0
        last_service_end = 0.0

        def dispatch(node: ClusterNode, now: float) -> None:
            finish = node.try_dispatch(now)
            if finish is not None:
                kernel.schedule(
                    finish, EventKind.FINISH, node.node_id, payload=node.epoch
                )

        def on_arrivals(now: float, events: List[Event]) -> None:
            # All arrivals at this instant route before any dispatch, so
            # simultaneous requests can share a batch (single-node engine
            # semantics) and routing sees them in stream order.
            nonlocal n_dropped
            touched: Dict[int, ClusterNode] = {}
            for ev in events:
                r = ev.payload
                replicas = [
                    n
                    for n in self.replicas_for(r.model)
                    if n.node_id not in down
                ]
                if not replicas:
                    f = FailedRequest(
                        request=r, failed_at_s=now, reason="unrouted"
                    )
                    if fleet_stats is not None:
                        fleet_stats.record_failure(f)
                        n_dropped += 1
                    else:
                        dropped.append(f)
                    continue
                node = self.router.route(r, replicas, now)
                node.enqueue(r)
                touched[node.node_id] = node
            for nid in sorted(touched):
                if touched[nid].idle:
                    dispatch(touched[nid], now)

        def on_finishes(now: float, events: List[Event]) -> None:
            nonlocal last_service_end
            for ev in events:
                node = self.nodes[ev.entity]
                if ev.payload != node.epoch:
                    continue  # batch was lost to a failure; stale event
                node.finish_batch(now)
                last_service_end = now
                dispatch(node, now)

        def on_fails(now: float, events: List[Event]) -> None:
            for ev in events:
                nid = ev.entity
                if nid >= len(self.nodes) or nid in down:
                    continue
                down.add(nid)
                self.nodes[nid].fail(now)

        def on_recovers(now: float, events: List[Event]) -> None:
            down.difference_update(ev.entity for ev in events)

        if _fast is not None:
            _fast.count_run()
            route = chooser.route

            def dispatch_fast(node: ClusterNode, now: float) -> bool:
                finish = node.try_dispatch(now)
                chooser.invalidate_backlogs()
                if finish is not None:
                    kernel.schedule(
                        finish, EventKind.FINISH, node.node_id,
                        payload=node.epoch,
                    )
                    return True
                return False

            def on_epoch(now: float, lo: int, hi: int) -> bool:
                if hi - lo == 1:
                    r = ordered[lo]
                    node = route(r, now)
                    if node is None:
                        dropped.append(
                            FailedRequest(
                                request=r, failed_at_s=now, reason="unrouted"
                            )
                        )
                        return False
                    node.queue.append(r)
                    if not node.in_flight:
                        return dispatch_fast(node, now)
                    return False
                touched: Dict[int, ClusterNode] = {}
                for r in ordered[lo:hi]:
                    node = route(r, now)
                    if node is None:
                        dropped.append(
                            FailedRequest(
                                request=r, failed_at_s=now, reason="unrouted"
                            )
                        )
                        continue
                    node.queue.append(r)
                    touched[node.node_id] = node
                scheduled = False
                for nid in sorted(touched):
                    if touched[nid].idle and dispatch_fast(touched[nid], now):
                        scheduled = True
                return scheduled

            def on_finishes_fast(now: float, events: List[Event]) -> None:
                nonlocal last_service_end
                for ev in events:
                    node = self.nodes[ev.entity]
                    if ev.payload != node.epoch:
                        continue  # batch was lost to a failure; stale event
                    node.report.stats.record_batch(
                        node._dispatch_s, now, node.in_flight
                    )
                    node.in_flight = []
                    last_service_end = now
                    dispatch_fast(node, now)

            def on_fails_fast(now: float, events: List[Event]) -> None:
                on_fails(now, events)
                chooser.invalidate_all()

            def on_recovers_fast(now: float, events: List[Event]) -> None:
                on_recovers(now, events)
                chooser.invalidate_all()

            _fast.drain(
                kernel,
                _fast.arrival_times(ordered),
                on_epoch,
                {
                    int(EventKind.FINISH): on_finishes_fast,
                    int(EventKind.FAIL): on_fails_fast,
                    int(EventKind.RECOVER): on_recovers_fast,
                },
                profiler=getattr(obs, "profile", None) if obs is not None else None,
            )
        else:
            kernel.run(
                {
                    EventKind.ARRIVAL: on_arrivals,
                    EventKind.FINISH: on_finishes,
                    EventKind.FAIL: on_fails,
                    EventKind.RECOVER: on_recovers,
                },
                obs=obs,
            )
        sim_end = max(last_service_end, last_arrival)
        report = ClusterReport(
            policy=self.policy,
            router=self.router.name,
            node_reports=[node.report for node in self.nodes],
            sim_end_s=sim_end,
            last_arrival_s=last_arrival,
            node_busy_s=[node.busy_s for node in self.nodes],
            specs=list(self.specs),
            dropped=dropped,
            n_dropped=n_dropped,
            stats=fleet_stats,
        )
        kernel.finalize(report)
        for rep in report.node_reports:
            rep.sim_end_s = sim_end
        if obs is not None and obs.telemetry is not None:
            obs.telemetry.record_counts(
                "cluster",
                served=report.served,
                rejected=report.rejected_count,
                failed=report.failed_count,
            )
        return report
