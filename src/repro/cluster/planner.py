"""Capacity planning: how many StepStone nodes does a workload need?

The provisioning question the paper's cost argument implies: given a
traffic mix (per-model request rates), a p99 latency SLO, and a per-node
dispatch policy (``cpu`` / ``pim`` / ``hybrid``), find the minimum fleet
size that sustains the load.  Feasibility at a node count is decided by
simulating a seeded Poisson stream of the mix against the fleet (no
admission drops — the planner wants the *raw* queueing tail) and checking
the fleet-wide p99 against the SLO.

More nodes split the same offered load further, so feasibility is
monotone in the node count and a doubling search followed by binary
search finds the frontier in O(log n) simulations.  All simulations share
one engine, so the per-batch latency model is paid once across the whole
search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cluster.fleet import Cluster, ClusterReport
from repro.cluster.placement import DEFAULT_NODE_CAPACITY_BYTES
from repro.serving.engine import (
    OnlineServingEngine,
    Request,
    merge_streams,
    poisson_requests,
)

__all__ = ["CapacityPlan", "CapacityPlanner"]


@dataclass
class CapacityPlan:
    """Outcome of one minimum-node search."""

    policy: str
    router: str
    target_rps: float
    p99_slo_s: float
    nodes: int
    report: ClusterReport
    #: (node count, feasible?, p99 seconds) for every probe, search order.
    probes: List[Tuple[int, bool, float]] = field(default_factory=list)


class CapacityPlanner:
    """Binary-search fleet sizing for a traffic mix under a p99 SLO."""

    def __init__(
        self,
        mix: Mapping[str, float],
        engine: Optional[OnlineServingEngine] = None,
        router: str = "least-loaded",
        replication: Optional[int] = None,
        capacity_bytes: float = DEFAULT_NODE_CAPACITY_BYTES,
        n_requests: int = 400,
        window_slos: float = 5.0,
        seed: int = 0,
    ) -> None:
        """``mix`` maps model name -> traffic share (normalized internally).

        ``replication=None`` (default) replicates every mix model on every
        node — the planner is sizing capacity, so a model pinned to fewer
        replicas than nodes would cap its throughput regardless of fleet
        size.  ``window_slos`` stretches feasibility-probe streams to at
        least that many SLOs of arrivals: a fleet that is slowly falling
        behind looks fine over a window shorter than the latency bound.
        """
        if not mix:
            raise ValueError("traffic mix must name at least one model")
        total = float(sum(mix.values()))
        if total <= 0 or any(w < 0 for w in mix.values()):
            raise ValueError("traffic shares must be non-negative, sum > 0")
        self.mix: Dict[str, float] = {m: w / total for m, w in mix.items() if w > 0}
        self.engine = engine or OnlineServingEngine()
        for model in self.mix:
            if model not in self.engine.models:
                raise KeyError(f"mix model {model!r} unknown to the engine")
        self.router = router
        self.replication = replication
        self.capacity_bytes = capacity_bytes
        self.n_requests = n_requests
        self.window_slos = window_slos
        self.seed = seed

    def stream(
        self,
        target_rps: float,
        slo_s: Optional[float] = None,
        duration_s: Optional[float] = None,
    ) -> List[Request]:
        """Seeded Poisson mix totalling ``target_rps``; default duration
        yields ~``n_requests`` arrivals (scale-free in the rate)."""
        if target_rps <= 0:
            raise ValueError("target rate must be positive")
        if duration_s is None:
            duration_s = self.n_requests / target_rps
        streams = [
            poisson_requests(
                model,
                rate_rps=share * target_rps,
                duration_s=duration_s,
                seed=self.seed + i,
                slo_s=slo_s,
                start_id=i * 1_000_000,
            )
            for i, (model, share) in enumerate(sorted(self.mix.items()))
        ]
        return merge_streams(*streams)

    def _cluster(self, n_nodes: int, policy: str) -> Cluster:
        from repro.cluster.placement import ModelPlacement

        rep = n_nodes if self.replication is None else min(self.replication, n_nodes)
        placement = ModelPlacement.plan(
            {m: self.engine.models[m] for m in self.mix},
            n_nodes=n_nodes,
            replication=rep,
            capacity_bytes=self.capacity_bytes,
        )
        return Cluster(
            n_nodes,
            policy=policy,
            router=self.router,
            engine=self.engine,
            placement=placement,
        )

    def evaluate(
        self,
        n_nodes: int,
        policy: str,
        target_rps: float,
        duration_s: Optional[float] = None,
    ) -> ClusterReport:
        """Simulate the mix at ``target_rps`` on an ``n_nodes`` fleet."""
        return self._cluster(n_nodes, policy).run(
            self.stream(target_rps, duration_s=duration_s)
        )

    def sustains(
        self, n_nodes: int, policy: str, target_rps: float, p99_slo_s: float
    ) -> Tuple[bool, ClusterReport]:
        """Does the fleet hold fleet-wide p99 under the SLO at this load?"""
        duration = max(self.n_requests / target_rps, self.window_slos * p99_slo_s)
        report = self.evaluate(n_nodes, policy, target_rps, duration_s=duration)
        return report.p99_s <= p99_slo_s, report

    def min_nodes(
        self,
        policy: str,
        target_rps: float,
        p99_slo_s: float,
        max_nodes: int = 64,
    ) -> CapacityPlan:
        """Minimum node count meeting the SLO at ``target_rps``.

        Doubles until feasible, then binary-searches the frontier; raises
        if even ``max_nodes`` nodes cannot hold the SLO.
        """
        if p99_slo_s <= 0:
            raise ValueError("p99 SLO must be positive")
        probes: List[Tuple[int, bool, float]] = []
        reports: Dict[int, ClusterReport] = {}

        def feasible(n: int) -> bool:
            ok, report = self.sustains(n, policy, target_rps, p99_slo_s)
            probes.append((n, ok, report.p99_s))
            reports[n] = report
            return ok

        lo, hi = 0, 1  # lo: largest known-infeasible count
        while not feasible(hi):
            if hi >= max_nodes:
                raise ValueError(
                    f"{policy}: even {max_nodes} nodes miss the "
                    f"{p99_slo_s * 1e3:.1f} ms p99 SLO at {target_rps:.0f} req/s"
                )
            lo = hi
            hi = min(2 * hi, max_nodes)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if feasible(mid):
                hi = mid
            else:
                lo = mid
        return CapacityPlan(
            policy=policy,
            router=self.router,
            target_rps=target_rps,
            p99_slo_s=p99_slo_s,
            nodes=hi,
            report=reports[hi],
            probes=probes,
        )

    def throughput_curve(
        self,
        node_counts: List[int],
        policy: str,
        offered_rps: float,
        slo_s: Optional[float] = None,
    ) -> List[Tuple[int, ClusterReport]]:
        """Fleet reports over ``node_counts`` at a fixed offered load — the
        scaling curve behind the ``serve-cluster`` chart (plot each
        report's ``goodput_rps``).  With ``slo_s`` set the stream carries
        that SLO, so overloaded fleets shed the hopeless tail instead of
        queueing it forever."""
        stream = self.stream(offered_rps, slo_s=slo_s)
        return [(n, self._cluster(n, policy).run(stream)) for n in node_counts]
