"""Capacity planning: how many nodes — and of which hardware — does a
workload need?

Two planners answer the provisioning question the paper's cost argument
implies:

* :class:`CapacityPlanner` — the homogeneous question: given a traffic
  mix (per-model request rates), a p99 latency SLO, and a per-node
  dispatch policy (``cpu`` / ``pim`` / ``hybrid``), find the minimum
  StepStone fleet size that sustains the load.  Feasibility at a node
  count is decided by simulating a seeded Poisson stream of the mix
  against the fleet (no admission drops — the planner wants the *raw*
  queueing tail) and checking the fleet-wide p99 against the SLO.  More
  nodes split the same offered load further, so feasibility is monotone
  in the node count and a doubling search followed by binary search finds
  the frontier in O(log n) simulations.

* :class:`HeteroCapacityPlanner` — the paper's *cross-substrate* question
  at fleet scale (Figs. 6/8 ask it per GEMM): what **mix** of StepStone,
  CPU, and GPU nodes serves this traffic cheapest in $/hr under the SLO?
  Feasibility is not monotone in any single count once substrates mix, so
  the search first sizes each homogeneous fleet (binary search as above),
  takes the cheapest one as a cost ceiling, then enumerates every mixed
  composition under that ceiling in ascending cost order — pruning
  compositions whose optimistic full-batch capacity cannot carry the
  offered rate — and simulates until the first (hence cheapest) feasible
  mix.  The result can therefore never cost more than the best
  homogeneous fleet, and both $/hr and J/request are reported.

All simulations share one engine, so the per-batch latency model is paid
once across the whole search.
"""

from __future__ import annotations

import itertools
import math
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.fleet import Cluster, ClusterReport
from repro.cluster.placement import (
    DEFAULT_NODE_CAPACITY_BYTES,
    ModelPlacement,
    PlacementError,
)
from repro.serving.engine import (
    OnlineServingEngine,
    Request,
    merge_streams,
    poisson_requests,
)
from repro.serving.nodespec import DEFAULT_CATALOG, NodeSpec
from repro.sim.analytic import AnalyticCapacityModel, MGkEstimate

__all__ = [
    "CapacityPlan",
    "CapacityPlanner",
    "HeteroCapacityPlan",
    "HeteroCapacityPlanner",
]


@dataclass
class CapacityPlan:
    """Outcome of one minimum-node search."""

    policy: str
    router: str
    target_rps: float
    p99_slo_s: float
    nodes: int
    #: The winning probe's simulation — ``None`` in analytic mode, which
    #: never runs the DES.
    report: Optional[ClusterReport] = None
    #: (node count, feasible?, p99 seconds) for every probe, search
    #: order.  In analytic mode the p99 is the closed-form estimate.
    probes: List[Tuple[int, bool, float]] = field(default_factory=list)
    #: The winning probe's closed-form estimate (analytic mode only).
    analytic: Optional[MGkEstimate] = None


class CapacityPlanner:
    """Binary-search fleet sizing for a traffic mix under a p99 SLO.

    Args:
        mix: Model name -> traffic share (normalized internally).
        engine: Shared latency model; a default one when omitted.
        router: Routing policy for every probed fleet.
        replication: Replicas per model; ``None`` (default) replicates
            every mix model on every node — the planner is sizing
            capacity, so a model pinned to fewer replicas than nodes
            would cap its throughput regardless of fleet size.
        capacity_bytes: Per-node weight budget for probe placements.
        n_requests: Arrivals per feasibility probe (before the
            ``window_slos`` stretch).
        window_slos: Probe streams are stretched to at least this many
            SLOs of arrivals: a fleet that is slowly falling behind looks
            fine over a window shorter than the latency bound.
        seed: Stream seed (same seed, same probes, same plan).
        mode: ``"sim"`` (default) decides feasibility by simulation;
            ``"analytic"`` uses the closed-form M/G/k model of
            :mod:`repro.sim.analytic` — instant probes, no DES run, and
            a plan whose ``report`` is ``None`` but whose ``analytic``
            field carries the winning estimate.
        analytic_safety: Multiplier on the analytic p99 before the SLO
            comparison (analytic mode only).  The approximation can sit
            under the simulated tail at moderate utilization; the safety
            factor keeps the analytic plan at least as large as the DES
            plan on the serve-cluster anchor scenarios — deliberately
            conservative, never optimistic.
    """

    def __init__(
        self,
        mix: Mapping[str, float],
        engine: Optional[OnlineServingEngine] = None,
        router: str = "least-loaded",
        replication: Optional[int] = None,
        capacity_bytes: float = DEFAULT_NODE_CAPACITY_BYTES,
        n_requests: int = 400,
        window_slos: float = 5.0,
        seed: int = 0,
        mode: str = "sim",
        analytic_safety: float = 2.0,
    ) -> None:
        if not mix:
            raise ValueError("traffic mix must name at least one model")
        total = float(sum(mix.values()))
        if total <= 0 or any(w < 0 for w in mix.values()):
            raise ValueError("traffic shares must be non-negative, sum > 0")
        self.mix: Dict[str, float] = {m: w / total for m, w in mix.items() if w > 0}
        self.engine = engine or OnlineServingEngine()
        for model in self.mix:
            if model not in self.engine.models:
                raise KeyError(f"mix model {model!r} unknown to the engine")
        self.router = router
        self.replication = replication
        self.capacity_bytes = capacity_bytes
        self.n_requests = n_requests
        self.window_slos = window_slos
        self.seed = seed
        if mode not in ("sim", "analytic"):
            raise ValueError(f"mode must be 'sim' or 'analytic', not {mode!r}")
        if analytic_safety < 1.0:
            raise ValueError("analytic_safety below 1.0 would plan optimistically")
        self.mode = mode
        self.analytic_safety = analytic_safety

    def analytic_model(self, policy: str) -> AnalyticCapacityModel:
        """The closed-form M/G/k model for this mix under ``policy``."""
        return AnalyticCapacityModel(self.engine, self.mix, policy)

    def stream(
        self,
        target_rps: float,
        slo_s: Optional[float] = None,
        duration_s: Optional[float] = None,
    ) -> List[Request]:
        """Seeded Poisson mix totalling ``target_rps``.

        Args:
            target_rps: Total offered rate across the mix.
            slo_s: Optional per-request SLO carried by the stream.
            duration_s: Stream length; the default yields about
                ``n_requests`` arrivals (scale-free in the rate).

        Returns:
            One arrival-ordered request stream.
        """
        if target_rps <= 0:
            raise ValueError("target rate must be positive")
        if duration_s is None:
            duration_s = self.n_requests / target_rps
        streams = [
            poisson_requests(
                model,
                rate_rps=share * target_rps,
                duration_s=duration_s,
                seed=self.seed + i,
                slo_s=slo_s,
                start_id=i * 1_000_000,
            )
            for i, (model, share) in enumerate(sorted(self.mix.items()))
        ]
        return merge_streams(*streams)

    def _cluster(self, n_nodes: int, policy: str) -> Cluster:
        rep = n_nodes if self.replication is None else min(self.replication, n_nodes)
        placement = ModelPlacement.plan(
            {m: self.engine.models[m] for m in self.mix},
            n_nodes=n_nodes,
            replication=rep,
            capacity_bytes=self.capacity_bytes,
        )
        return Cluster(
            n_nodes,
            policy=policy,
            router=self.router,
            engine=self.engine,
            placement=placement,
        )

    def evaluate(
        self,
        n_nodes: int,
        policy: str,
        target_rps: float,
        duration_s: Optional[float] = None,
    ) -> ClusterReport:
        """Simulate the mix at ``target_rps`` on an ``n_nodes`` fleet."""
        return self._cluster(n_nodes, policy).run(
            self.stream(target_rps, duration_s=duration_s)
        )

    def sustains(
        self, n_nodes: int, policy: str, target_rps: float, p99_slo_s: float
    ) -> Tuple[bool, ClusterReport]:
        """Does the fleet hold fleet-wide p99 under the SLO at this load?

        Returns:
            ``(feasible, report)`` for one probe simulation.
        """
        duration = max(self.n_requests / target_rps, self.window_slos * p99_slo_s)
        report = self.evaluate(n_nodes, policy, target_rps, duration_s=duration)
        return report.p99_s <= p99_slo_s, report

    def min_nodes(
        self,
        policy: str,
        target_rps: float,
        p99_slo_s: float,
        max_nodes: int = 64,
    ) -> CapacityPlan:
        """Minimum node count meeting the SLO at ``target_rps``.

        Doubles until feasible, then binary-searches the frontier.

        Args:
            policy: StepStone dispatch policy to size for.
            target_rps: Offered rate of the mix.
            p99_slo_s: Fleet-wide p99 bound, seconds.
            max_nodes: Abort threshold for the doubling search.

        Returns:
            The :class:`CapacityPlan` at the feasibility frontier.

        Raises:
            ValueError: If even ``max_nodes`` nodes cannot hold the SLO.
        """
        if p99_slo_s <= 0:
            raise ValueError("p99 SLO must be positive")
        probes: List[Tuple[int, bool, float]] = []
        reports: Dict[int, ClusterReport] = {}
        estimates: Dict[int, MGkEstimate] = {}

        if self.mode == "analytic":
            model = self.analytic_model(policy)

            def feasible(n: int) -> bool:
                # Saturated probes warn by design when a user asks for a
                # single estimate; a search *expects* to straddle the
                # saturation frontier, so the warning is noise here.
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    est = model.estimate(n, target_rps)
                ok = (
                    not est.clamped
                    and est.p99_s * self.analytic_safety <= p99_slo_s
                )
                probes.append((n, ok, est.p99_s))
                estimates[n] = est
                return ok

        else:

            def feasible(n: int) -> bool:
                ok, report = self.sustains(n, policy, target_rps, p99_slo_s)
                probes.append((n, ok, report.p99_s))
                reports[n] = report
                return ok

        lo, hi = 0, 1  # lo: largest known-infeasible count
        while not feasible(hi):
            if hi >= max_nodes:
                raise ValueError(
                    f"{policy}: even {max_nodes} nodes miss the "
                    f"{p99_slo_s * 1e3:.1f} ms p99 SLO at {target_rps:.0f} req/s"
                )
            lo = hi
            hi = min(2 * hi, max_nodes)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if feasible(mid):
                hi = mid
            else:
                lo = mid
        return CapacityPlan(
            policy=policy,
            router=self.router,
            target_rps=target_rps,
            p99_slo_s=p99_slo_s,
            nodes=hi,
            report=reports.get(hi),
            probes=probes,
            analytic=estimates.get(hi),
        )

    def throughput_curve(
        self,
        node_counts: List[int],
        policy: str,
        offered_rps: float,
        slo_s: Optional[float] = None,
    ) -> List[Tuple[int, ClusterReport]]:
        """Fleet reports over ``node_counts`` at a fixed offered load — the
        scaling curve behind the ``serve-cluster`` chart (plot each
        report's ``goodput_rps``).  With ``slo_s`` set the stream carries
        that SLO, so overloaded fleets shed the hopeless tail instead of
        queueing it forever."""
        stream = self.stream(offered_rps, slo_s=slo_s)
        return [(n, self._cluster(n, policy).run(stream)) for n in node_counts]


# ---------------------------------------------------------------------- #
# Heterogeneous (cost-minimizing) planning
# ---------------------------------------------------------------------- #


@dataclass
class HeteroCapacityPlan:
    """Outcome of one cheapest-mixed-fleet search."""

    policy: str
    router: str
    target_rps: float
    p99_slo_s: float
    #: Spec name -> node count of the winning fleet (zero counts omitted).
    counts: Dict[str, int]
    #: Spec name -> the catalog spec (for cost/power lookups).
    specs: Dict[str, NodeSpec]
    report: ClusterReport
    #: Spec name -> homogeneous minimum count, or None when that backend
    #: cannot meet the SLO at all within the search bound.
    homogeneous: Dict[str, Optional[int]] = field(default_factory=dict)
    #: (counts, simulated?, feasible?, p99 seconds, $/hr) per candidate,
    #: search order.  Pruned candidates carry simulated=False, p99=NaN.
    probes: List[Tuple[Dict[str, int], bool, bool, float, float]] = field(
        default_factory=list
    )

    @property
    def hourly_cost(self) -> float:
        """Winning fleet price in $/hr."""
        return sum(self.specs[n].hourly_cost * c for n, c in self.counts.items())

    @property
    def total_nodes(self) -> int:
        """Winning fleet size across all node types."""
        return sum(self.counts.values())

    @property
    def joules_per_request(self) -> float:
        """Energy efficiency of the winning fleet's probe run."""
        return self.report.joules_per_request

    def homogeneous_cost(self, name: str) -> float:
        """$/hr of the best all-``name`` fleet (inf when infeasible)."""
        n = self.homogeneous.get(name)
        if n is None:
            return math.inf
        return n * self.specs[name].hourly_cost

    def summary(self) -> str:
        """One-line plan summary: the mix, its price, and its tail."""
        mix = " + ".join(f"{c}x{n}" for n, c in sorted(self.counts.items()))
        return (
            f"{mix} @ {self.target_rps:.0f} req/s under "
            f"{self.p99_slo_s * 1e3:.0f} ms p99: ${self.hourly_cost:.2f}/hr, "
            f"p99 {self.report.p99_s * 1e3:.1f} ms, "
            f"{self.joules_per_request:.2f} J/req"
        )


class HeteroCapacityPlanner(CapacityPlanner):
    """Cheapest mixed fleet (in $/hr) meeting a p99 SLO at a target rate.

    Args:
        mix: Model name -> traffic share (normalized internally).
        catalog: The node types the search may buy (one
            :class:`~repro.serving.NodeSpec` per distinct name).
        engine: Shared latency model; a default one when omitted.
        router: Routing policy for every probed fleet.
        n_requests: Arrivals per feasibility probe.
        window_slos: Minimum probe length in SLOs (see
            :class:`CapacityPlanner`).
        seed: Stream seed.
    """

    def __init__(
        self,
        mix: Mapping[str, float],
        catalog: Sequence[NodeSpec] = DEFAULT_CATALOG,
        engine: Optional[OnlineServingEngine] = None,
        router: str = "least-loaded",
        n_requests: int = 400,
        window_slos: float = 5.0,
        seed: int = 0,
    ) -> None:
        super().__init__(
            mix,
            engine=engine,
            router=router,
            n_requests=n_requests,
            window_slos=window_slos,
            seed=seed,
        )
        if not catalog:
            raise ValueError("catalog must name at least one node spec")
        self.catalog: Dict[str, NodeSpec] = {}
        for spec in catalog:
            if spec.name in self.catalog:
                raise ValueError(f"duplicate catalog spec name {spec.name!r}")
            self.catalog[spec.name] = spec

    # ------------------------------------------------------------------ #
    # Fleet construction and per-spec capacity estimates
    # ------------------------------------------------------------------ #

    def _specs_for(self, counts: Mapping[str, int]) -> List[NodeSpec]:
        specs: List[NodeSpec] = []
        for name in self.catalog:  # catalog order keeps node ids stable
            specs.extend([self.catalog[name]] * counts.get(name, 0))
        if not specs:
            raise ValueError("fleet composition is empty")
        return specs

    def fleet(self, counts: Mapping[str, int], policy: str) -> Cluster:
        """Build the mixed fleet for a composition.

        Args:
            counts: Spec name -> node count (names from the catalog).
            policy: StepStone dispatch policy for StepStone nodes.

        Returns:
            A :class:`Cluster` with a saturating placement: every node
            hosts every mix model that fits its memory.
        """
        unknown = sorted(set(counts) - set(self.catalog))
        if unknown:
            raise KeyError(f"specs not in the catalog: {unknown}")
        specs = self._specs_for(counts)
        placement = ModelPlacement.saturate(
            {m: self.engine.models[m] for m in self.mix}, specs
        )
        return Cluster(
            policy=policy,
            router=self.router,
            engine=self.engine,
            placement=placement,
            specs=specs,
        )

    def capacity_rps(
        self, spec: NodeSpec, policy: str, batch: Optional[int] = None
    ) -> float:
        """Optimistic steady-state req/s one node of ``spec`` sustains.

        Delegates to :meth:`OnlineServingEngine.mix_capacity_rps` — the
        one capacity formula the planner's pruning bound and the
        autoscale policies' sizing share.  Models that do not fit the
        node's memory contribute nothing, so a node hosting no mix model
        has zero capacity.  Optimistic because real traffic never batches
        perfectly, so pruning compositions whose summed estimate is below
        the offered rate is safe in practice — with one caveat: the
        estimate assumes each node serves the mix *proportionally*.  A
        fleet whose routing specializes nodes by model (each node serving
        only what it is fastest at) can sustain slightly more than the
        sum, so the prune is a heuristic, not a proof; the hard guarantee
        of :meth:`min_cost_fleet` (never costlier than the best
        homogeneous fleet) does not depend on it.
        """
        return self.engine.mix_capacity_rps(self.mix, policy, batch=batch, spec=spec)

    def sustains_fleet(
        self,
        counts: Mapping[str, int],
        policy: str,
        target_rps: float,
        p99_slo_s: float,
    ) -> Tuple[bool, ClusterReport]:
        """Simulate one composition against the mix at ``target_rps``.

        Returns:
            ``(feasible, report)`` — feasible when the fleet-wide raw p99
            holds the SLO.

        Raises:
            PlacementError: When some mix model fits no node of the
                composition (``min_cost_fleet`` treats that as an
                infeasible candidate and moves on).
        """
        duration = max(self.n_requests / target_rps, self.window_slos * p99_slo_s)
        fleet = self.fleet(counts, policy)
        report = fleet.run(self.stream(target_rps, duration_s=duration))
        return report.p99_s <= p99_slo_s, report

    # ------------------------------------------------------------------ #
    # The search
    # ------------------------------------------------------------------ #

    def _homogeneous_min(
        self,
        name: str,
        policy: str,
        target_rps: float,
        p99_slo_s: float,
        max_nodes: int,
        probes: List,
        reports: Dict[Tuple[Tuple[str, int], ...], ClusterReport],
    ) -> Optional[int]:
        """Doubling + binary search over all-``name`` fleets; None when
        even ``max_nodes`` of them miss the SLO."""
        spec = self.catalog[name]

        def feasible(n: int) -> bool:
            counts = {name: n}
            ok, report = self.sustains_fleet(counts, policy, target_rps, p99_slo_s)
            probes.append((dict(counts), True, ok, report.p99_s, n * spec.hourly_cost))
            reports[tuple(sorted(counts.items()))] = report
            return ok

        try:
            lo, hi = 0, 1
            while not feasible(hi):
                if hi >= max_nodes:
                    return None
                lo = hi
                hi = min(2 * hi, max_nodes)
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if feasible(mid):
                    hi = mid
                else:
                    lo = mid
            return hi
        except PlacementError:
            # no mix model fits this node type's memory at all
            return None

    def min_cost_fleet(
        self,
        policy: str,
        target_rps: float,
        p99_slo_s: float,
        max_nodes_per_type: int = 16,
    ) -> HeteroCapacityPlan:
        """Cheapest composition (possibly mixed) meeting the SLO.

        Sizes each homogeneous fleet first (its cost is the ceiling), then
        walks every mixed composition at or under the ceiling in ascending
        $/hr, pruning compositions whose optimistic capacity estimate
        (:meth:`capacity_rps` — heuristic under model-specialized
        routing) cannot carry ``target_rps``, and returns the first
        feasible one — by construction never costlier than the best
        homogeneous fleet.

        Args:
            policy: StepStone dispatch policy for StepStone nodes.
            target_rps: Offered rate of the mix.
            p99_slo_s: Fleet-wide p99 bound, seconds.
            max_nodes_per_type: Search bound per node type.

        Returns:
            The winning :class:`HeteroCapacityPlan`.

        Raises:
            ValueError: When no composition within the bounds is feasible.
        """
        if p99_slo_s <= 0:
            raise ValueError("p99 SLO must be positive")
        if target_rps <= 0:
            raise ValueError("target rate must be positive")
        probes: List = []
        reports: Dict[Tuple[Tuple[str, int], ...], ClusterReport] = {}
        homogeneous: Dict[str, Optional[int]] = {}
        for name in self.catalog:
            homogeneous[name] = self._homogeneous_min(
                name,
                policy,
                target_rps,
                p99_slo_s,
                max_nodes_per_type,
                probes,
                reports,
            )
        feasible_homo = {
            name: n for name, n in homogeneous.items() if n is not None
        }
        if not feasible_homo:
            raise ValueError(
                f"no homogeneous fleet of <= {max_nodes_per_type} nodes "
                f"holds the {p99_slo_s * 1e3:.0f} ms p99 SLO at "
                f"{target_rps:.0f} req/s"
            )
        best_name = min(
            feasible_homo,
            key=lambda n: (feasible_homo[n] * self.catalog[n].hourly_cost, n),
        )
        best_counts = {best_name: feasible_homo[best_name]}
        ceiling = feasible_homo[best_name] * self.catalog[best_name].hourly_cost

        # Per-type count bound: a homogeneous winner count when known,
        # else whatever the cost ceiling can buy.
        bound: Dict[str, int] = {}
        for name, spec in self.catalog.items():
            by_cost = (
                int(ceiling / spec.hourly_cost) if spec.hourly_cost > 0 else max_nodes_per_type
            )
            n_homo = homogeneous[name]
            cap = n_homo if n_homo is not None else by_cost
            bound[name] = max(0, min(cap, max_nodes_per_type, by_cost))

        names = list(self.catalog)
        cap_est = {
            name: self.capacity_rps(self.catalog[name], policy) for name in names
        }
        candidates: List[Tuple[float, int, Dict[str, int]]] = []
        for combo in itertools.product(*(range(bound[n] + 1) for n in names)):
            counts = {n: c for n, c in zip(names, combo) if c > 0}
            if not counts or len(counts) < 2:
                continue  # homogeneous fleets were sized exactly above
            cost = sum(self.catalog[n].hourly_cost * c for n, c in counts.items())
            if cost > ceiling + 1e-9:
                continue
            candidates.append((cost, sum(counts.values()), counts))
        candidates.sort(key=lambda t: (t[0], t[1], sorted(t[2].items())))

        winner = best_counts
        winner_report = reports[tuple(sorted(best_counts.items()))]
        for cost, _total, counts in candidates:
            est = sum(cap_est[n] * c for n, c in counts.items())
            if est < target_rps:
                probes.append((dict(counts), False, False, math.nan, cost))
                continue
            try:
                ok, report = self.sustains_fleet(
                    counts, policy, target_rps, p99_slo_s
                )
            except PlacementError:
                # some mix model fits no node of this composition
                probes.append((dict(counts), False, False, math.nan, cost))
                continue
            probes.append((dict(counts), True, ok, report.p99_s, cost))
            if ok:
                winner = counts
                winner_report = report
                break

        return HeteroCapacityPlan(
            policy=policy,
            router=self.router,
            target_rps=target_rps,
            p99_slo_s=p99_slo_s,
            counts=dict(winner),
            specs=dict(self.catalog),
            report=winner_report,
            homogeneous=homogeneous,
            probes=probes,
        )
