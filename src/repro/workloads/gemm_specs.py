"""Table I: common DL-inference GEMM dimensions, plus sweep generators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.gemm import GemmShape

__all__ = [
    "Table1Entry",
    "TABLE1_GEMMS",
    "DEFAULT_WEIGHT_SHAPE",
    "batch_sweep",
    "aspect_ratio_sweep",
]


@dataclass(frozen=True)
class Table1Entry:
    """One row of Table I."""

    model: str
    layer: str
    m: int  # weight rows (output features)
    k: int  # weight cols (input features)
    batch_range: Tuple[int, int]

    def shape(self, n: int) -> GemmShape:
        lo, hi = self.batch_range
        if not lo <= n <= hi:
            raise ValueError(f"batch {n} outside Table I range {self.batch_range}")
        return GemmShape(self.m, self.k, n)


#: Table I verbatim: weight matrices are [output x input].
TABLE1_GEMMS: Tuple[Table1Entry, ...] = (
    Table1Entry("BERT", "MLP", 4096, 1024, (1, 8)),
    Table1Entry("BERT", "MLP", 1024, 4096, (1, 8)),
    Table1Entry("BERT", "Projection", 1024, 1024, (1, 8)),
    Table1Entry("GPT2", "MLP", 6400, 1600, (1, 8)),
    Table1Entry("GPT2", "MLP", 1600, 6400, (1, 8)),
    Table1Entry("GPT2", "Projection", 1600, 1600, (1, 8)),
    Table1Entry("DLRM", "Bottom MLP", 512, 2560, (1, 256)),
    Table1Entry("DLRM", "Bottom MLP", 32, 512, (1, 256)),
    Table1Entry("DLRM", "Top MLP", 128, 512, (1, 256)),
    Table1Entry("DLRM", "Top MLP", 1, 128, (1, 256)),
)

#: The paper's representative weight matrix (§IV "By default, 1024 x 4096").
DEFAULT_WEIGHT_SHAPE: Tuple[int, int] = (1024, 4096)


def batch_sweep(
    m: int = DEFAULT_WEIGHT_SHAPE[0],
    k: int = DEFAULT_WEIGHT_SHAPE[1],
    n_min: int = 1,
    n_max: int = 1024,
) -> Iterator[GemmShape]:
    """Powers-of-two batch sweep (the roofline x-axis of Figs. 1 and 7)."""
    n = n_min
    while n <= n_max:
        yield GemmShape(m, k, n)
        n *= 2


def aspect_ratio_sweep(total_elems: int = 2**24, n: int = 4) -> List[GemmShape]:
    """Fixed-size aspect-ratio sweep (Fig. 13): [2K,8K] ... [16K,1K]."""
    shapes = []
    m = 2048
    while m <= 16384:
        k = total_elems // m
        shapes.append(GemmShape(m, k, n))
        m *= 2
    return shapes
