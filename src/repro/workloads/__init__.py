"""Workload definitions: Table I GEMM shapes and parameter sweeps."""

from repro.workloads.gemm_specs import (
    DEFAULT_WEIGHT_SHAPE,
    TABLE1_GEMMS,
    Table1Entry,
    batch_sweep,
    aspect_ratio_sweep,
)

__all__ = [
    "DEFAULT_WEIGHT_SHAPE",
    "TABLE1_GEMMS",
    "Table1Entry",
    "batch_sweep",
    "aspect_ratio_sweep",
]
