"""PEI baseline [3]: per-cache-block PIM instructions.

PIM-Enabled Instructions avoid the address-mapping problem entirely: the CPU
sends one command packet per cache block, carrying opcode/operand
information, and the PIM processes that block.  The costs (§II, §V-B):

* the command channel serializes one packet per block — with more than a few
  PIMs per channel the command bus, not DRAM bandwidth, bounds throughput
  ("PEI cannot fully utilize BG-level PIMs due to command bandwidth
  bottleneck");
* CPU cores generate addresses and write B operands into PIM scratchpads
  (no grouping, so every active PIM receives the operand stream);
* reduction also runs on the CPU.
"""

from __future__ import annotations

from repro.core.config import StepStoneConfig
from repro.core.executor import GemmResult, LatencyBreakdown, execute_gemm
from repro.core.gemm import GemmShape
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["pei_gemm"]


def pei_gemm(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    launch_delay_cycles: float = 0.0,
) -> GemmResult:
    """PEI GEMM latency at *level* (Fig. 8's PEI bars).

    Starts from the same DRAM-stream timing as StepStone (the blocks still
    have to be read), then applies the command-bandwidth bound and the
    CPU-side operand/reduction costs.
    """
    base = execute_gemm(
        config, mapping, shape, level, agen="stepstone", flow="echo"
    )
    plan = base.plan
    t = config.timing
    dma = config.dma

    total_blocks = float(sum(plan.gemm_blocks_per_pim.values()))
    blocks_per_channel = total_blocks / config.channels
    command_cycles = blocks_per_channel * (dma.pei_packet_cycles + launch_delay_cycles)
    # The PIMs cannot run faster than commands arrive.
    gemm_cycles = max(base.breakdown.gemm, command_cycles)

    # Operand distribution: the CPU writes each PIM's B working set into its
    # scratchpad; without block grouping every active PIM needs the rows for
    # the blocks it receives, totalling the full B per "sharing" PIM set.
    chan_bw = dma.bytes_per_cycle_per_channel * config.channels
    b_words = plan.shape.k * plan.shape.n * plan.n_active_pims
    loc_bytes = b_words * config.word_bytes
    localization = (
        loc_bytes / (chan_bw * dma.cpu_efficiency)
        + (loc_bytes / 64.0) * dma.cpu_per_block_overhead_cycles
    )

    breakdown = LatencyBreakdown(
        gemm=gemm_cycles,
        fill_b=base.breakdown.fill_b,
        fill_c=base.breakdown.fill_c,
        drain_c=base.breakdown.drain_c,
        localization=localization,
        reduction=base.breakdown.reduction,
    )
    return GemmResult(
        plan=plan,
        breakdown=breakdown,
        agen="host",
        flow="pei",
        bubble_stall_cycles=max(0.0, command_cycles - base.breakdown.gemm),
        kernel_launches=int(total_blocks),
        pim_dram_blocks=base.pim_dram_blocks,
        offchip_blocks=loc_bytes / 64.0 + base.offchip_blocks,
        simd_mac_ops=base.simd_mac_ops,
        scratchpad_accesses=base.scratchpad_accesses,
    )
