"""Analytic CPU GEMM model (measured-Xeon substitute).

The paper measures an Intel Xeon Platinum 8280 (28 cores, 2.7 GHz,
Cascade Lake) running oneDNN.  Without that hardware we use an analytic
model calibrated to the ratios the paper reports:

* batch-1 GEMM on a memory-resident 1024 x 4096 weight matrix takes about
  12x the StepStone-BG batch-1 latency (§V-A) — an effective streaming
  bandwidth of ~12.5 GB/s for tall-skinny small-batch GEMM, well below the
  socket's 140 GB/s peak and below one StepStone channel pair's 38.4 GB/s
  (§V-A: measured CPU "falls short of the channel-level StepStone-CH");
* allowing the CPU 1.2x its batch-1 latency admits batch-32 (§I, §V-A), so
  effective time grows ~0.65%/sample over the inference range;
* the CPU overtakes PIM throughput only at batch >= 256 (§V-B roofline
  discussion), which the linear-degradation + compute-floor model yields.

The **idealized CPU** (iCPU) of Fig. 8 "maximally utilizes memory channel
bandwidth"; the paper estimates it with StepStone-CH, and so do we (see
`repro.models.inference`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gemm import GemmShape

__all__ = ["CpuConfig", "CpuGemmModel", "XEON_8280"]


@dataclass(frozen=True)
class CpuConfig:
    """Calibrated CPU parameters (defaults: Xeon Platinum 8280)."""

    name: str = "xeon-8280"
    cores: int = 28
    clock_hz: float = 2.7e9
    flops_per_cycle_per_core: int = 64  # AVX-512: 2 FMA pipes x 16 fp32
    peak_bw_gbps: float = 140.8  # 6 x DDR4-2933
    #: Effective streaming bandwidth for memory-resident small-batch GEMM.
    eff_bw_small_batch_gbps: float = 12.5
    #: Per-sample latency degradation (calibrates batch-32 = 1.2x batch-1).
    batch_degradation_per_sample: float = 0.0065
    compute_efficiency: float = 0.85
    #: Fixed per-GEMM software overhead (dispatch, packing), seconds.
    overhead_s: float = 2.0e-6

    @property
    def peak_flops(self) -> float:
        return self.cores * self.clock_hz * self.flops_per_cycle_per_core


XEON_8280 = CpuConfig()


class CpuGemmModel:
    """Latency/throughput model for CPU GEMM with memory-resident weights."""

    def __init__(self, config: CpuConfig = XEON_8280) -> None:
        self.config = config

    def gemm_seconds(self, shape: GemmShape, weights_in_memory: bool = True) -> float:
        """Wall-clock seconds for one C[m,n] = A[m,k] @ B[k,n].

        ``weights_in_memory=False`` models the (rare) cache-resident case by
        charging only the compute floor.
        """
        c = self.config
        compute_s = shape.flops / (c.peak_flops * c.compute_efficiency)
        if not weights_in_memory:
            return compute_s + c.overhead_s
        a_bytes = shape.weight_bytes
        degrade = 1.0 + c.batch_degradation_per_sample * (shape.n - 1)
        mem_s = a_bytes / (c.eff_bw_small_batch_gbps * 1e9) * degrade
        # The memory system never beats its peak: floor by peak-bandwidth
        # streaming of the full operand set.
        floor_s = (a_bytes + 4.0 * shape.k * shape.n + 4.0 * shape.m * shape.n) / (
            c.peak_bw_gbps * 1e9
        )
        return max(compute_s, mem_s, floor_s) + c.overhead_s

    def gemm_cycles(
        self, shape: GemmShape, dram_clock_hz: float = 1.2e9, weights_in_memory: bool = True
    ) -> float:
        """Same latency expressed in DRAM-clock cycles (Fig. 6 units)."""
        return self.gemm_seconds(shape, weights_in_memory) * dram_clock_hz

    def throughput_samples_per_s(self, shape: GemmShape) -> float:
        return shape.n / self.gemm_seconds(shape)

    def gflops(self, shape: GemmShape) -> float:
        """Achieved GFLOP/s (roofline measurement points, Figs. 1 and 7)."""
        return shape.flops / self.gemm_seconds(shape) / 1e9
