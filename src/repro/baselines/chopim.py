"""Chopim baselines [9]: naive (nCHO) and enhanced (eCHO).

Chopim supports coarse-grained PIM kernels under complex address mappings by
aligning long vector operands, but its vector-oriented execution cannot
exploit GEMM block locality:

* **nCHO** — the GEMM runs as N back-to-back GEMV kernels.  Every GEMV
  streams the entire weight matrix again (the missed temporal locality the
  paper highlights in §II/§V-B), re-localizes its input vector, and reduces
  its own partials.  We model it as N executions of the batch-1 flow.
* **eCHO** — Chopim enhanced with StepStone's block grouping (§IV
  "Comparisons"): same locality as StepStone, but localization/reduction run
  on CPU cores and the kernel granularity is one dot-product row, so command
  traffic is much higher (the §V-G colocation gap).
"""

from __future__ import annotations


from repro.core.config import StepStoneConfig
from repro.core.executor import GemmResult, execute_gemm
from repro.core.gemm import GemmShape
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["echo_gemm", "ncho_gemm"]


def echo_gemm(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    launch_delay_cycles: float = 0.0,
    pinned_id_bits: int = 0,
) -> GemmResult:
    """Enhanced Chopim: StepStone grouping, CPU loc/red, per-dot kernels."""
    return execute_gemm(
        config,
        mapping,
        shape,
        level,
        agen="stepstone",
        flow="echo",
        launch_delay_cycles=launch_delay_cycles,
        pinned_id_bits=pinned_id_bits,
    )


def ncho_gemm(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    launch_delay_cycles: float = 0.0,
) -> GemmResult:
    """Naive Chopim: N sequential GEMV kernels, each streaming all of A."""
    gemv = GemmShape(shape.m, shape.k, 1)
    one = execute_gemm(
        config,
        mapping,
        gemv,
        level,
        agen="stepstone",
        flow="echo",
        launch_delay_cycles=launch_delay_cycles,
    )
    n = shape.n
    return GemmResult(
        plan=one.plan,
        breakdown=one.breakdown.scaled(n),
        agen=one.agen,
        flow="ncho",
        bubble_stall_cycles=one.bubble_stall_cycles * n,
        kernel_launches=one.kernel_launches * n,
        pim_dram_blocks=one.pim_dram_blocks * n,
        offchip_blocks=one.offchip_blocks * n,
        simd_mac_ops=one.simd_mac_ops * n,
        scratchpad_accesses=one.scratchpad_accesses * n,
    )
