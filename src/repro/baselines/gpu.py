"""Analytic GPU GEMM model (measured Titan Xp substitute).

Models the two scenarios of Figs. 1 and 7:

* **weights resident in device memory** — a roofline over the GPU's HBM-class
  bandwidth and fp32 peak (with a CUTLASS-like efficiency factor and a kernel
  launch floor);
* **weights resident in host memory** — every GEMM must first stage the
  weight matrix over PCIe 3.0 x16, which dominates at small batch and is the
  "data loading overhead" annotation of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.gemm import GemmShape

__all__ = ["GpuConfig", "GpuGemmModel", "TITAN_XP"]


@dataclass(frozen=True)
class GpuConfig:
    """Calibrated GPU parameters (defaults: NVIDIA Titan Xp)."""

    name: str = "titan-xp"
    peak_flops: float = 12.15e12  # fp32
    device_bw_gbps: float = 547.6
    #: On-card memory capacity — the weight-hosting budget of a GPU fleet
    #: node (Titan Xp: 12 GB of GDDR5X).
    device_memory_bytes: float = 12e9
    #: Effective PCIe 3.0 x16 staging bandwidth for pageable host weights
    #: (well below the 15.75 GB/s wire rate); calibrated so batch-1
    #: host-resident GPU GEMM lands below the CPU, as Fig. 1 shows.
    pcie_bw_gbps: float = 10.0
    compute_efficiency: float = 0.80
    bandwidth_efficiency: float = 0.75
    kernel_launch_s: float = 5.0e-6
    #: Occupancy roll-off for tall-skinny GEMMs: with tiny N the kernel grid
    #: cannot fill the SMs and no split-K reuse exists, so achieved
    #: bandwidth scales ~ N / (N + half_n).  Calibrated so the device-
    #: resident GPU overtakes StepStone only beyond batch 16 (Fig. 7).
    skinny_half_n: float = 192.0


TITAN_XP = GpuConfig()


class GpuGemmModel:
    """Latency/throughput model for GPU GEMM."""

    def __init__(self, config: GpuConfig = TITAN_XP) -> None:
        self.config = config

    def gemm_seconds(self, shape: GemmShape, weights_in_device: bool = True) -> float:
        c = self.config
        a_bytes = shape.weight_bytes
        bytes_touched = a_bytes + 4.0 * shape.k * shape.n + 4.0 * shape.m * shape.n
        compute_s = shape.flops / (c.peak_flops * c.compute_efficiency)
        occupancy = shape.n / (shape.n + c.skinny_half_n)
        eff_bw = c.device_bw_gbps * 1e9 * c.bandwidth_efficiency * occupancy
        mem_s = bytes_touched / eff_bw
        t = max(compute_s, mem_s) + c.kernel_launch_s
        if not weights_in_device:
            # Host-resident weights: stage A over PCIe first (B/C transfers
            # are negligible next to A for the paper's shapes).
            t += a_bytes / (c.pcie_bw_gbps * 1e9)
        return t

    def gemm_cycles(
        self, shape: GemmShape, dram_clock_hz: float = 1.2e9, weights_in_device: bool = True
    ) -> float:
        return self.gemm_seconds(shape, weights_in_device) * dram_clock_hz

    def gflops(self, shape: GemmShape, weights_in_device: bool = True) -> float:
        return shape.flops / self.gemm_seconds(shape, weights_in_device) / 1e9
