"""Comparison models: CPU, GPU, PEI, and Chopim (naive + enhanced)."""

from repro.baselines.cpu import CpuConfig, CpuGemmModel, XEON_8280
from repro.baselines.gpu import GpuConfig, GpuGemmModel, TITAN_XP
from repro.baselines.pei import pei_gemm
from repro.baselines.chopim import echo_gemm, ncho_gemm

__all__ = [
    "CpuConfig",
    "CpuGemmModel",
    "XEON_8280",
    "GpuConfig",
    "GpuGemmModel",
    "TITAN_XP",
    "pei_gemm",
    "echo_gemm",
    "ncho_gemm",
]
