"""DDR4 DRAM timing substrate.

Two engines with one set of timing parameters (Table II, DDR4-2400R):

- :mod:`repro.dram.controller` — an exact command-level FR-FCFS simulator in
  the style of Ramulator [24]: per-bank state machines, tCCD_S/L cadence,
  tFAW/tRRD activation throttling, read/write turnarounds, and refresh.
- :mod:`repro.dram.stream` — a vectorized timing model for the in-order
  block streams produced by a single PIM unit; used by the GEMM executor for
  multi-million-block traces and validated against the command-level engine.
"""

from repro.dram.commands import Command, CommandType, Request
from repro.dram.timing import DDR4Timing, DDR4_2400R
from repro.dram.bank import Bank, BankTimingState, RankState
from repro.dram.controller import ChannelController, ControllerStats
from repro.dram.stream import StreamAccess, StreamStats, stream_cycles, sequential_stream_cycles

__all__ = [
    "Command",
    "CommandType",
    "Request",
    "DDR4Timing",
    "DDR4_2400R",
    "Bank",
    "BankTimingState",
    "RankState",
    "ChannelController",
    "ControllerStats",
    "StreamAccess",
    "StreamStats",
    "stream_cycles",
    "sequential_stream_cycles",
]
