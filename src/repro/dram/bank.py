"""Per-bank and per-rank DRAM state machines.

These track the earliest cycle each command type may issue at each bank,
honouring intra-bank constraints (tRCD/tRP/tRAS/tRC/tRTP/tWR) and the
rank-level activation constraints (tRRD_S/L and the four-activate window).
The channel controller layers command/data-bus constraints on top.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

from repro.dram.timing import DDR4Timing

__all__ = ["BankTimingState", "Bank", "RankState"]


@dataclass
class BankTimingState:
    """Earliest-issue cycles for each command class at one bank."""

    act_ready: int = 0
    pre_ready: int = 0
    col_ready: int = 0  # RD/WR after the row is open


@dataclass
class Bank:
    """One DRAM bank: open row plus timing state."""

    timing: DDR4Timing
    open_row: Optional[int] = None
    state: BankTimingState = field(default_factory=BankTimingState)
    last_act: int = -(10**9)

    def can_activate(self, cycle: int) -> bool:
        return self.open_row is None and cycle >= self.state.act_ready

    def can_precharge(self, cycle: int) -> bool:
        return self.open_row is not None and cycle >= self.state.pre_ready

    def can_column(self, cycle: int, row: int) -> bool:
        return self.open_row == row and cycle >= self.state.col_ready

    def activate(self, cycle: int, row: int) -> None:
        t = self.timing
        if not self.can_activate(cycle):
            raise RuntimeError(f"illegal ACT at cycle {cycle}")
        self.open_row = row
        self.last_act = cycle
        self.state.col_ready = max(self.state.col_ready, cycle + t.tRCD)
        self.state.pre_ready = max(self.state.pre_ready, cycle + t.tRAS)
        self.state.act_ready = max(self.state.act_ready, cycle + t.tRC)

    def precharge(self, cycle: int) -> None:
        t = self.timing
        if not self.can_precharge(cycle):
            raise RuntimeError(f"illegal PRE at cycle {cycle}")
        self.open_row = None
        self.state.act_ready = max(self.state.act_ready, cycle + t.tRP)

    def column_access(self, cycle: int, is_write: bool) -> None:
        t = self.timing
        if self.open_row is None or cycle < self.state.col_ready:
            raise RuntimeError(f"illegal column access at cycle {cycle}")
        if is_write:
            # Write recovery gates the following precharge.
            self.state.pre_ready = max(
                self.state.pre_ready, cycle + t.tCWL + t.tBL + t.tWR
            )
        else:
            self.state.pre_ready = max(self.state.pre_ready, cycle + t.tRTP)


class RankState:
    """Rank-level activation bookkeeping: tRRD and the tFAW window."""

    def __init__(self, timing: DDR4Timing) -> None:
        self.timing = timing
        self._recent_acts: Deque[int] = deque(maxlen=4)
        self._last_act_cycle: int = -(10**9)
        self._last_act_bankgroup: int = -1

    def act_ready_cycle(self, bankgroup: int) -> int:
        """Earliest cycle an ACT to *bankgroup* may issue in this rank."""
        t = self.timing
        ready = 0
        if self._last_act_cycle >= 0:
            spacing = t.act_to_act(bankgroup == self._last_act_bankgroup)
            ready = self._last_act_cycle + spacing
        if len(self._recent_acts) == 4:
            ready = max(ready, self._recent_acts[0] + t.tFAW)
        return ready

    def record_act(self, cycle: int, bankgroup: int) -> None:
        self._recent_acts.append(cycle)
        self._last_act_cycle = cycle
        self._last_act_bankgroup = bankgroup
