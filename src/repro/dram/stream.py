"""Vectorized timing model for in-order PIM access streams.

A StepStone PIM unit issues its cache-block accesses *in order* (the AGEN
walks addresses monotonically), so channel-level out-of-order scheduling adds
nothing: timing is dominated by (1) the CAS-to-CAS cadence between consecutive
blocks (tCCD_L within a bank group, tCCD_S across, rank switches), (2) AGEN
bubbles when the next address is not ready within the cadence window, and
(3) row-buffer misses, partially hidden because the deep AGEN pipeline lets
control logic activate upcoming rows ahead of time (§III-A: 20-stage pipeline
"sufficient to hide address generation and access latencies").

The model computes all three vectorized; the test suite validates it against
the command-level controller on randomized traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.dram.timing import DDR4Timing, DDR4_2400R

__all__ = ["StreamAccess", "StreamStats", "stream_cycles", "sequential_stream_cycles"]


@dataclass
class StreamAccess:
    """Column-access stream of one PIM unit, as parallel arrays.

    ``bank`` must be a *globally* unique flat bank index (rank/bankgroup/bank
    combined); ``bubbles`` holds per-access address-generation cycles (the
    AGEN iteration count), or ``None`` for an ideal generator.
    """

    rank: np.ndarray
    bankgroup: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    bubbles: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        n = len(self.row)
        for name in ("rank", "bankgroup", "bank"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch")
        if self.bubbles is not None and len(self.bubbles) != n:
            raise ValueError("bubbles length mismatch")

    def __len__(self) -> int:
        return len(self.row)


@dataclass
class StreamStats:
    """Result of a stream-timing evaluation."""

    cycles: float
    accesses: int
    row_hits: int
    row_misses: int
    bubble_stall_cycles: float
    cadence_cycles: float
    miss_penalty_cycles: float

    @property
    def cycles_per_access(self) -> float:
        return self.cycles / self.accesses if self.accesses else 0.0

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


def _pairwise_cadence(acc: StreamAccess, t: DDR4Timing) -> np.ndarray:
    """Minimum command spacing before each access (index 0 gets startup)."""
    n = len(acc)
    gaps = np.full(n, t.tCCDS, dtype=np.float64)
    if n > 1:
        same_rank = acc.rank[1:] == acc.rank[:-1]
        same_bg = (acc.bankgroup[1:] == acc.bankgroup[:-1]) & same_rank
        g = np.where(same_bg, t.tCCDL, t.tCCDS).astype(np.float64)
        g = np.where(same_rank, g, t.tBL + t.tRTRS)
        gaps[1:] = g
    gaps[0] = 0.0
    return gaps


def stream_cycles(
    acc: StreamAccess,
    timing: DDR4Timing = DDR4_2400R,
    lookahead_act: bool = True,
    refresh: bool = True,
    fixed_point_iters: int = 2,
) -> StreamStats:
    """Cycles to stream all accesses of one PIM unit, in order.

    ``lookahead_act=True`` models StepStone's pipelined row activation: a row
    miss only stalls for the part of tRP+tRCD not already covered by the time
    since the previous access to the same bank.  ``False`` charges the full
    penalty (the behaviour of a generator that cannot run ahead, e.g. the
    naive AGEN whose next address is unknown until generated).
    """
    n = len(acc)
    if n == 0:
        return StreamStats(0.0, 0, 0, 0, 0.0, 0.0, 0.0)
    t = timing
    cadence = _pairwise_cadence(acc, t)
    if acc.bubbles is not None:
        bub = acc.bubbles.astype(np.float64).copy()
        bub[0] = 0.0  # the first address overlaps the pipeline fill
        eff = np.maximum(cadence, bub)
        bubble_stall = float(np.sum(eff - cadence))
    else:
        eff = cadence
        bubble_stall = 0.0

    # Previous access to the same bank (stable grouping by bank).
    order = np.lexsort((np.arange(n), acc.bank))
    prev = np.full(n, -1, dtype=np.int64)
    ob = acc.bank[order]
    same_as_prev = np.zeros(n, dtype=bool)
    same_as_prev[1:] = ob[1:] == ob[:-1]
    prev_sorted = np.where(same_as_prev, np.roll(order, 1), -1)
    prev[order] = prev_sorted
    first_of_bank = prev < 0
    row_prev = np.where(first_of_bank, -1, acc.row[np.maximum(prev, 0)])
    miss = first_of_bank | (acc.row != row_prev)
    n_miss = int(np.sum(miss))
    n_hit = n - n_miss

    penalty_base = float(t.row_miss_penalty)
    penalties = np.zeros(n, dtype=np.float64)
    if not lookahead_act:
        penalties[miss] = penalty_base
        total = float(np.sum(eff + penalties))
    else:
        # Fixed point: penalties depend on inter-access elapsed times, which
        # depend on penalties.  Two iterations converge in practice (each
        # round only shrinks penalties; validated against the controller).
        for _ in range(max(1, fixed_point_iters)):
            tline = np.cumsum(eff + penalties)
            elapsed = np.where(
                first_of_bank, np.inf, tline - tline[np.maximum(prev, 0)]
            )
            # tRC also gates back-to-back ACTs to one bank.
            trc_gap = np.maximum(0.0, t.tRC - elapsed)
            new_pen = np.where(
                miss, np.maximum(np.maximum(0.0, penalty_base - elapsed), trc_gap), 0.0
            )
            new_pen[first_of_bank & miss] = 0.0  # first touch: ACT issued ahead
            penalties = new_pen
        total = float(np.sum(eff + penalties))

    # Four-activate window: ACT rate per rank cannot exceed 4 per tFAW.
    for r in np.unique(acc.rank):
        acts_r = int(np.sum(miss & (acc.rank == r)))
        total = max(total, acts_r / 4.0 * t.tFAW)

    # Pipeline fill: first command's ACT + CAS + burst return.
    total += t.tRCD + t.tCL + t.tBL
    if refresh:
        total *= 1.0 / (1.0 - t.refresh_overhead)
    return StreamStats(
        cycles=total,
        accesses=n,
        row_hits=n_hit,
        row_misses=n_miss,
        bubble_stall_cycles=bubble_stall,
        cadence_cycles=float(np.sum(eff)),
        miss_penalty_cycles=float(np.sum(penalties)) if lookahead_act else n_miss * penalty_base,
    )


def sequential_stream_cycles(
    n_blocks: float,
    timing: DDR4Timing = DDR4_2400R,
    cadence: float | None = None,
    blocks_per_row: int = 128,
    refresh: bool = True,
) -> float:
    """Analytic cycles for a *contiguous* scan of ``n_blocks`` cache blocks.

    Used for scratchpad buffer fill/drain and DMA streams over PIM-local
    regions, which the localization engine laid out sequentially (§III-B,
    Fig. 5 "reorganizes the input matrix ... such that accesses are
    sequential").  Row crossings in a contiguous scan move to a different
    bank, so activations overlap streaming whenever a row holds enough
    blocks to cover tRP+tRCD (true for all Table II geometries).
    """
    t = timing
    if n_blocks <= 0:
        return 0.0
    if cadence is None:
        cadence = float(t.tCCDS)
    rows = max(1.0, np.ceil(n_blocks / blocks_per_row))
    hidden = (blocks_per_row - 1) * cadence
    per_miss = max(0.0, t.row_miss_penalty - hidden)
    total = n_blocks * cadence + rows * per_miss + t.tRCD + t.tCL + t.tBL
    if refresh:
        total *= 1.0 / (1.0 - t.refresh_overhead)
    return float(total)
