"""DDR4 timing parameters (Table II) and derived quantities.

All values are in DRAM clock cycles at the device clock (1.2 GHz for
DDR4-2400: data rate 2400 MT/s, burst of 8 transfers over 4 clocks).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["DDR4Timing", "DDR4_2400R"]


@dataclass(frozen=True)
class DDR4Timing:
    """DDR4 timing set.  Field names follow JEDEC / Ramulator conventions."""

    tBL: int = 4  # burst length (cycles of data bus occupancy)
    tCCDS: int = 4  # CAS-to-CAS, different bank group
    tCCDL: int = 6  # CAS-to-CAS, same bank group
    tRTRS: int = 2  # rank-to-rank switch
    tCL: int = 16  # CAS latency
    tRCD: int = 16  # RAS-to-CAS delay
    tRP: int = 16  # precharge
    tCWL: int = 12  # CAS write latency
    tRAS: int = 39  # row active time
    tRC: int = 55  # row cycle (tRAS + tRP)
    tRTP: int = 9  # read-to-precharge
    tWTRS: int = 3  # write-to-read, different bank group
    tWTRL: int = 9  # write-to-read, same bank group
    tWR: int = 18  # write recovery
    tRRDS: int = 4  # ACT-to-ACT, different bank group
    tRRDL: int = 6  # ACT-to-ACT, same bank group
    tFAW: int = 26  # four-activate window
    tREFI: int = 9360  # refresh interval (7.8 us @ 1.2 GHz)
    tRFC: int = 313  # refresh cycle time (~260 ns for a 4 Gb device)
    clock_hz: float = 1.2e9

    def __post_init__(self) -> None:
        for name in (
            "tBL",
            "tCCDS",
            "tCCDL",
            "tCL",
            "tRCD",
            "tRP",
            "tCWL",
            "tRAS",
            "tRC",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.tCCDL < self.tCCDS:
            raise ValueError("tCCDL must be >= tCCDS")
        if self.tRC < self.tRAS:
            raise ValueError("tRC must be >= tRAS")

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #

    @property
    def row_miss_penalty(self) -> int:
        """Unoverlapped PRE + ACT-to-CAS cost of a row-buffer miss."""
        return self.tRP + self.tRCD

    @property
    def peak_channel_bytes_per_cycle(self) -> float:
        """64 B per tBL cycles on a 64-bit channel."""
        return 64.0 / self.tBL

    @property
    def peak_channel_gbps(self) -> float:
        """Peak channel bandwidth in GB/s."""
        return self.peak_channel_bytes_per_cycle * self.clock_hz / 1e9

    @property
    def refresh_overhead(self) -> float:
        """Fraction of time the rank is unavailable due to refresh."""
        return self.tRFC / self.tREFI

    def cas_to_cas(self, same_bankgroup: bool, same_rank: bool = True) -> int:
        """Minimum spacing between two column commands."""
        if not same_rank:
            return self.tBL + self.tRTRS
        return self.tCCDL if same_bankgroup else self.tCCDS

    def act_to_act(self, same_bankgroup: bool) -> int:
        return self.tRRDL if same_bankgroup else self.tRRDS

    def write_to_read(self, same_bankgroup: bool) -> int:
        """WR command to RD command spacing (after write burst)."""
        return self.tCWL + self.tBL + (self.tWTRL if same_bankgroup else self.tWTRS)

    @property
    def read_to_write(self) -> int:
        """RD command to WR command spacing (bus turnaround)."""
        return self.tCL + self.tBL + 2 - self.tCWL

    def scaled(self, **overrides: int) -> "DDR4Timing":
        """A copy with selected fields overridden (for sensitivity studies)."""
        return replace(self, **overrides)


#: Table II baseline device: DDR4-2400R, 4 Gb, x8.
DDR4_2400R = DDR4Timing()
