"""Command-level DDR4 channel controller (Ramulator-style, FR-FCFS).

This is the validation engine: it issues explicit ACT/PRE/RD/WR/REF commands
against per-bank state machines, honouring command-bus serialization, data-bus
cadence (tCCD_S/L, rank switches, read/write turnarounds), activation
throttling (tRRD, tFAW), and periodic refresh.  The vectorized stream model
(:mod:`repro.dram.stream`) is checked against this engine in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dram.bank import Bank, RankState
from repro.dram.commands import BankCoord, Command, CommandType, Request
from repro.dram.timing import DDR4Timing, DDR4_2400R

__all__ = ["ChannelController", "ControllerStats"]


@dataclass
class ControllerStats:
    """Aggregate results of one controller run."""

    total_cycles: int = 0
    row_hits: int = 0
    row_misses: int = 0  # ACTs issued for demand requests
    activates: int = 0
    precharges: int = 0
    refreshes: int = 0
    reads: int = 0
    writes: int = 0
    commands: List[Command] = field(default_factory=list)

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class ChannelController:
    """One DDR4 channel with FR-FCFS scheduling.

    Parameters
    ----------
    timing: DDR4 timing set.
    ranks, bankgroups, banks: channel population (Table II: 2 x 4 x 4).
    queue_depth: scheduler window (requests considered out of order).
    refresh: enable periodic per-rank refresh.
    trace_commands: record every issued command (tests only; memory-heavy).
    """

    def __init__(
        self,
        timing: DDR4Timing = DDR4_2400R,
        ranks: int = 2,
        bankgroups: int = 4,
        banks: int = 4,
        queue_depth: int = 32,
        refresh: bool = True,
        trace_commands: bool = False,
    ) -> None:
        self.timing = timing
        self.ranks = ranks
        self.bankgroups = bankgroups
        self.banks_per_group = banks
        self.queue_depth = queue_depth
        self.refresh_enabled = refresh
        self.trace_commands = trace_commands
        n_banks = ranks * bankgroups * banks
        self._banks: List[Bank] = [Bank(timing) for _ in range(n_banks)]
        self._rank_state: List[RankState] = [RankState(timing) for _ in range(ranks)]
        self._rank_blocked_until: List[int] = [0] * ranks
        self._next_refresh: List[int] = [timing.tREFI * (1 + r) // ranks for r in range(ranks)]
        self._last_cmd_cycle: int = -1
        # Last column command on the data bus: (issue cycle, rank, bankgroup, is_write)
        self._last_col: Optional[Tuple[int, int, int, bool]] = None

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _bank(self, coord: BankCoord) -> Bank:
        return self._banks[coord.flat(self.bankgroups, self.banks_per_group)]

    def _col_bus_ready(self, coord: BankCoord, is_write: bool) -> int:
        """Earliest cycle the data bus permits a column command to *coord*."""
        if self._last_col is None:
            return 0
        t = self.timing
        last_cycle, last_rank, last_bg, last_write = self._last_col
        if coord.rank != last_rank:
            gap = t.tBL + t.tRTRS
            if last_write and not is_write:
                gap = max(gap, t.tCWL + t.tBL + t.tRTRS)
        else:
            gap = t.cas_to_cas(coord.bankgroup == last_bg)
            if last_write and not is_write:
                gap = max(gap, t.write_to_read(coord.bankgroup == last_bg))
            elif not last_write and is_write:
                gap = max(gap, t.read_to_write)
        return last_cycle + gap

    def _needed_command(self, req: Request) -> CommandType:
        bank = self._bank(req.coord)
        if bank.open_row == req.row:
            return CommandType.WR if req.is_write else CommandType.RD
        if bank.open_row is None:
            return CommandType.ACT
        return CommandType.PRE

    def _command_ready_cycle(self, req: Request, kind: CommandType) -> int:
        bank = self._bank(req.coord)
        rank_free = self._rank_blocked_until[req.coord.rank]
        if kind in (CommandType.RD, CommandType.WR):
            return max(
                bank.state.col_ready,
                self._col_bus_ready(req.coord, req.is_write),
                rank_free,
            )
        if kind is CommandType.ACT:
            return max(
                bank.state.act_ready,
                self._rank_state[req.coord.rank].act_ready_cycle(req.coord.bankgroup),
                rank_free,
            )
        return max(bank.state.pre_ready, rank_free)  # PRE

    def _do_refresh(self, rank: int, now: int) -> int:
        """Precharge-all and refresh *rank*; returns the completion cycle."""
        t = self.timing
        start = now
        for bg in range(self.bankgroups):
            for b in range(self.banks_per_group):
                bank = self._bank(BankCoord(rank, bg, b))
                if bank.open_row is not None:
                    start = max(start, bank.state.pre_ready)
        for bg in range(self.bankgroups):
            for b in range(self.banks_per_group):
                bank = self._bank(BankCoord(rank, bg, b))
                if bank.open_row is not None:
                    bank.open_row = None
                    bank.state.act_ready = max(bank.state.act_ready, start + t.tRP)
        ref_start = start + t.tRP
        done = ref_start + t.tRFC
        for bg in range(self.bankgroups):
            for b in range(self.banks_per_group):
                bank = self._bank(BankCoord(rank, bg, b))
                bank.state.act_ready = max(bank.state.act_ready, done)
        return done

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def run(self, requests: List[Request]) -> ControllerStats:
        """Service *requests* (any order); returns aggregate statistics.

        Request ``completion`` fields are filled with data-return cycles.
        """
        t = self.timing
        stats = ControllerStats()
        pending = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        queue: List[Request] = []
        next_idx = 0
        now = 0
        last_completion = 0
        n_total = len(pending)
        n_done = 0

        while n_done < n_total:
            # Admit arrived requests into the scheduling window.
            while (
                next_idx < n_total
                and len(queue) < self.queue_depth
                and pending[next_idx].arrival <= now
            ):
                queue.append(pending[next_idx])
                next_idx += 1

            # Refresh has priority once due.
            if self.refresh_enabled:
                for rank in range(self.ranks):
                    if now >= self._next_refresh[rank]:
                        done = self._do_refresh(rank, now)
                        self._rank_blocked_until[rank] = done
                        self._next_refresh[rank] += t.tREFI
                        stats.refreshes += 1

            issued = False
            if queue:
                # Pass 1: oldest ready row-hit column command (FR part).
                best: Optional[Tuple[Request, CommandType]] = None
                for req in queue:
                    kind = self._needed_command(req)
                    if kind in (CommandType.RD, CommandType.WR):
                        if self._command_ready_cycle(req, kind) <= now:
                            best = (req, kind)
                            break
                if best is None:
                    # Pass 2: prep (ACT/PRE) for the oldest request per bank;
                    # precharge only when no queued request still hits the row.
                    seen_banks: set = set()
                    open_row_hits = {
                        (r.coord.rank, r.coord.bankgroup, r.coord.bank)
                        for r in queue
                        if self._bank(r.coord).open_row == r.row
                    }
                    for req in queue:
                        bkey = (req.coord.rank, req.coord.bankgroup, req.coord.bank)
                        if bkey in seen_banks:
                            continue
                        seen_banks.add(bkey)
                        kind = self._needed_command(req)
                        if kind is CommandType.PRE and bkey in open_row_hits:
                            continue  # keep the row open for younger hits
                        if kind in (CommandType.ACT, CommandType.PRE):
                            if self._command_ready_cycle(req, kind) <= now:
                                best = (req, kind)
                                break
                if best is not None:
                    req, kind = best
                    bank = self._bank(req.coord)
                    if kind is CommandType.ACT:
                        bank.activate(now, req.row)
                        self._rank_state[req.coord.rank].record_act(
                            now, req.coord.bankgroup
                        )
                        stats.activates += 1
                        stats.row_misses += 1
                    elif kind is CommandType.PRE:
                        bank.precharge(now)
                        stats.precharges += 1
                    else:
                        bank.column_access(now, req.is_write)
                        self._last_col = (
                            now,
                            req.coord.rank,
                            req.coord.bankgroup,
                            req.is_write,
                        )
                        latency = (t.tCWL if req.is_write else t.tCL) + t.tBL
                        req.completion = now + latency
                        last_completion = max(last_completion, req.completion)
                        queue.remove(req)
                        n_done += 1
                        if req.is_write:
                            stats.writes += 1
                        else:
                            stats.reads += 1
                        # A column access that did not need an ACT is a hit
                        # only in the row-buffer sense; count it as such.
                        stats.row_hits += 1
                    if self.trace_commands:
                        stats.commands.append(
                            Command(now, kind, req.coord, req.row, req.column)
                        )
                    issued = True

            if issued:
                now += 1  # command bus: one command per cycle
                continue

            # Nothing issuable: jump to the next interesting cycle.
            candidates = []
            if next_idx < n_total:
                candidates.append(pending[next_idx].arrival)
            for req in queue:
                kind = self._needed_command(req)
                candidates.append(self._command_ready_cycle(req, kind))
            if self.refresh_enabled:
                candidates.extend(self._next_refresh)
            nxt = min((c for c in candidates if c > now), default=now + 1)
            now = max(now + 1, nxt)

        # Row-hit accounting: hits counted above include the first access
        # after each ACT; subtract so hits mean "no ACT needed".
        stats.row_hits -= stats.activates
        stats.total_cycles = last_completion
        return stats
