"""DRAM command and request types for the command-level simulator."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["CommandType", "Command", "Request", "BankCoord"]


class CommandType(enum.Enum):
    """DDR4 commands modelled by the controller."""

    ACT = "ACT"  # activate a row
    PRE = "PRE"  # precharge a bank
    RD = "RD"  # column read (BL8 burst)
    WR = "WR"  # column write (BL8 burst)
    REF = "REF"  # all-bank refresh


@dataclass(frozen=True)
class BankCoord:
    """Fully-qualified bank coordinate within one channel."""

    rank: int
    bankgroup: int
    bank: int

    def flat(self, bankgroups: int, banks: int) -> int:
        """Flatten to a dense index for per-bank bookkeeping arrays."""
        return (self.rank * bankgroups + self.bankgroup) * banks + self.bank


@dataclass
class Command:
    """A scheduled DRAM command (for tracing / assertions in tests)."""

    cycle: int
    kind: CommandType
    coord: Optional[BankCoord] = None
    row: Optional[int] = None
    column: Optional[int] = None


@dataclass
class Request:
    """A memory request presented to the channel controller.

    ``arrival`` is the cycle the request enters the queue.  ``extra_gap``
    models address-generation bubbles: the request may not be *visible* to
    the controller until the generator produces it, so the controller
    treats ``arrival`` as a readiness time.
    """

    arrival: int
    coord: BankCoord
    row: int
    column: int
    is_write: bool = False
    request_id: int = field(default=-1)
    completion: Optional[int] = None  # filled by the controller

    @property
    def done(self) -> bool:
        return self.completion is not None
