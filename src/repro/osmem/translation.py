"""PIM-controller address translation engine (§III-A / §IV).

The host-side PIM controller holds per-region translation state so a
coarse-grained kernel command needs only one lookup: "address translation
is infrequent (once per coarse-grained PIM command) because contiguous
physical regions are allocated for PIM execution" (§IV).  For chunked
regions the engine keeps the chunk table; translations within a kernel's
working range hit the same entry, so we also track a tiny TLB-like counter
to expose the (in)frequency the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.osmem.allocator import Region

__all__ = ["TranslationEngine", "TranslationStats"]


@dataclass
class TranslationStats:
    lookups: int = 0
    chunk_hits: int = 0  # same chunk as the previous lookup

    @property
    def hit_rate(self) -> float:
        return self.chunk_hits / self.lookups if self.lookups else 0.0


class TranslationEngine:
    """Region registry + virtual-offset translation for PIM commands."""

    def __init__(self) -> None:
        self._regions: Dict[str, Region] = {}
        self._stats: Dict[str, TranslationStats] = {}
        self._last_chunk: Dict[str, int] = {}

    def register(self, region: Region) -> None:
        if region.name in self._regions:
            raise ValueError(f"region {region.name!r} already registered")
        self._regions[region.name] = region
        self._stats[region.name] = TranslationStats()

    def deregister(self, name: str) -> None:
        self._regions.pop(name)
        self._stats.pop(name)
        self._last_chunk.pop(name, None)

    def region(self, name: str) -> Region:
        return self._regions[name]

    def translate(self, name: str, offset: int) -> int:
        """Translate a virtual offset within *name* to a physical address."""
        region = self._regions[name]
        stats = self._stats[name]
        stats.lookups += 1
        chunk = offset // region.chunk_bytes
        if self._last_chunk.get(name) == chunk:
            stats.chunk_hits += 1
        self._last_chunk[name] = chunk
        return region.translate(offset)

    def stats(self, name: str) -> TranslationStats:
        return self._stats[name]

    def kernel_command_translations(self, name: str, kernel_bytes: int) -> int:
        """Translations one coarse-grained kernel command needs.

        Contiguous regions need exactly one; chunked regions need one per
        chunk the kernel's range touches.
        """
        region = self._regions[name]
        if region.contiguous:
            return 1
        return max(1, -(-kernel_bytes // region.chunk_bytes))
