"""Colored physical-frame allocation for PIM-aligned matrices (§III-E).

StepStone's allocator requirements, as the paper states them:

1. **Contiguity + alignment** — a weight matrix occupies a contiguous,
   naturally-aligned physical range so its footprint bits line up with the
   XOR mapping (what :class:`~repro.mapping.analysis.FootprintAnalysis`
   assumes).
2. **Consistent chunked mappings** — when full contiguity is not available,
   the matrix may be built from power-of-two *chunks* (the paper's "32 KiB
   granularity rather than the minimum 4 KiB"), provided every chunk
   presents the same offset->PIM striping, i.e. contiguous virtual
   addresses "remain aligned in the DRAM space".
3. **Coloring for subsetting** — executing on a subset of PIMs requires
   chosen PIM-ID bits to be *constant* over the whole matrix.  An ID bit is
   the XOR of several address bits; within a chunk the low (offset) bits
   vary freely, so an ID bit is pinnable **iff none of its feeding bits lie
   below the chunk granularity** — those above are frame-number bits the OS
   can color (Chopim's coloring interface [9]).  Under the Skylake mapping
   with 32 KiB chunks, BG1 (a15^a19) and RK (a18^a22) are pinnable while
   BG0 (a7^a14) and CH (fed by a8/a9/a12/a13) are offset-determined.

`ColoredFrameAllocator` implements all three: contiguous aligned
allocation, chunked allocation with per-chunk color filtering, and the
pinnability query the scheduler consults before requesting subsetting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.mapping.xor_mapping import PimLevel, XORAddressMapping
from repro.utils.bits import bits_of_mask, parity

__all__ = ["AllocationError", "ColorConstraint", "Region", "ColoredFrameAllocator"]

PAGE_BYTES = 4096


class AllocationError(RuntimeError):
    """Raised when no suitable physical range exists."""


@dataclass(frozen=True)
class ColorConstraint:
    """Pin specific PIM-ID bits at *level* to given values.

    ``bit_values`` maps ID-bit index (LSB = BG0 under the paper's ordering)
    to the required constant value (0/1).
    """

    level: PimLevel
    bit_values: Tuple[Tuple[int, int], ...]

    def __post_init__(self) -> None:
        for idx, val in self.bit_values:
            if idx < 0 or val not in (0, 1):
                raise ValueError(f"invalid pinned bit ({idx}, {val})")

    @staticmethod
    def pin(level: PimLevel, **bits: int) -> "ColorConstraint":
        """Convenience: ``ColorConstraint.pin(level, b1=0, b2=1)``."""
        return ColorConstraint(
            level, tuple((int(k[1:]), v) for k, v in sorted(bits.items()))
        )


@dataclass(frozen=True)
class Region:
    """An allocated physical region (possibly chunked)."""

    name: str
    size: int
    chunks: Tuple[int, ...]  # physical base of each chunk, virtual order
    chunk_bytes: int
    constraint: Optional[ColorConstraint] = None

    @property
    def base(self) -> int:
        return self.chunks[0]

    @property
    def contiguous(self) -> bool:
        return all(
            b == self.chunks[0] + i * self.chunk_bytes
            for i, b in enumerate(self.chunks)
        )

    def translate(self, offset: int) -> int:
        """Virtual-offset -> physical address."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset:#x} outside region of {self.size:#x}")
        idx, within = divmod(offset, self.chunk_bytes)
        return self.chunks[idx] + within


class ColoredFrameAllocator:
    """First-fit allocator over the physical space of one mapping."""

    def __init__(self, mapping: XORAddressMapping, reserve_low: int = 0) -> None:
        self.mapping = mapping
        self.capacity = mapping.geometry.capacity_bytes
        if reserve_low % PAGE_BYTES:
            raise ValueError("reserve_low must be page aligned")
        self._free: List[Tuple[int, int]] = [(reserve_low, self.capacity)]
        self._regions: Dict[str, Region] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def regions(self) -> Dict[str, Region]:
        return dict(self._regions)

    def free_bytes(self) -> int:
        return sum(end - start for start, end in self._free)

    def pinnable_id_bits(self, level: PimLevel, chunk_bytes: int) -> List[int]:
        """ID-bit indices coloring can pin at this chunk granularity.

        A bit is pinnable iff none of its feeding address bits fall below
        ``log2(chunk_bytes)`` (offset bits vary within every chunk).
        """
        if chunk_bytes & (chunk_bytes - 1) or chunk_bytes < PAGE_BYTES:
            raise ValueError("chunk_bytes must be a power of two >= one page")
        lo = chunk_bytes.bit_length() - 1
        out = []
        for i, m in enumerate(self.mapping.pim_id_masks(level)):
            if bits_of_mask(m)[0] >= lo:
                out.append(i)
        return out

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #

    def allocate(self, name: str, size: int) -> Region:
        """Contiguous, naturally-aligned allocation (the default path)."""
        if name in self._regions:
            raise AllocationError(f"region {name!r} already exists")
        if size <= 0:
            raise AllocationError("size must be positive")
        size = max(size, PAGE_BYTES)
        align = 1 << (size - 1).bit_length()
        base = self._find_block(align, size, None, None)
        if base is None:
            raise AllocationError(f"no {size}-byte contiguous range available")
        self._carve(base, size)
        region = Region(name=name, size=size, chunks=(base,), chunk_bytes=size)
        self._regions[name] = region
        return region

    def allocate_chunked(
        self,
        name: str,
        size: int,
        chunk_bytes: int,
        constraint: Optional[ColorConstraint] = None,
    ) -> Region:
        """Chunked allocation with optional PIM-ID coloring.

        Every chunk base is chosen so (a) the pinned ID bits take their
        required values and (b) all non-pinned ID bits receive the *same*
        frame-bit contribution in every chunk, keeping the offset->PIM
        striping identical across chunks (the §III-E alignment rule).
        """
        if name in self._regions:
            raise AllocationError(f"region {name!r} already exists")
        if chunk_bytes & (chunk_bytes - 1) or chunk_bytes < PAGE_BYTES:
            raise AllocationError("chunk_bytes must be a power of two >= one page")
        if size % chunk_bytes:
            raise AllocationError("size must be a multiple of chunk_bytes")
        if constraint is not None:
            pinnable = set(self.pinnable_id_bits(constraint.level, chunk_bytes))
            for idx, _ in constraint.bit_values:
                if idx not in pinnable:
                    raise AllocationError(
                        f"PIM-ID bit {idx} is fed by offset bits below the "
                        f"{chunk_bytes}-byte chunk and cannot be pinned"
                    )
        n_chunks = size // chunk_bytes
        level = constraint.level if constraint is not None else PimLevel.BANKGROUP
        masks = self.mapping.pim_id_masks(level)
        hi_masks = [m & ~(chunk_bytes - 1) for m in masks]
        pinned = dict(constraint.bit_values) if constraint is not None else {}
        placed: List[int] = []
        try:
            for i in range(n_chunks):
                # Target frame-bit parities for chunk i: pinned bits take
                # their constant value; every other ID bit must follow the
                # parity a *contiguous* allocation at virtual offset
                # i*chunk_bytes would produce, so contiguous VAs "remain
                # aligned in the DRAM space" (§III-E).
                targets = []
                for b, m_hi in enumerate(hi_masks):
                    if b in pinned:
                        targets.append(pinned[b])
                    else:
                        targets.append(parity((i * chunk_bytes) & m_hi))
                base = self._find_block(
                    chunk_bytes, chunk_bytes, hi_masks, tuple(targets)
                )
                if base is None:
                    raise AllocationError(
                        f"cannot place chunk {i} of {n_chunks} "
                        "under the color constraint"
                    )
                self._carve(base, chunk_bytes)
                placed.append(base)
        except AllocationError:
            for b in placed:
                self._free.append((b, b + chunk_bytes))
            self._coalesce()
            raise
        region = Region(
            name=name,
            size=size,
            chunks=tuple(placed),
            chunk_bytes=chunk_bytes,
            constraint=constraint,
        )
        self._regions[name] = region
        return region

    def _find_block(
        self,
        align: int,
        size: int,
        hi_masks: Optional[List[int]] = None,
        targets: Optional[Tuple[int, ...]] = None,
    ) -> Optional[int]:
        for start, end in self._free:
            base = (start + align - 1) & ~(align - 1)
            while base + size <= end:
                if self._candidate_ok(base, hi_masks, targets):
                    return base
                base += align
        return None

    @staticmethod
    def _candidate_ok(
        base: int,
        hi_masks: Optional[List[int]],
        targets: Optional[Tuple[int, ...]],
    ) -> bool:
        if hi_masks is None or targets is None:
            return True
        for m, want in zip(hi_masks, targets):
            if parity(base & m) != want:
                return False
        return True

    def _carve(self, base: int, size: int) -> None:
        for i, (start, end) in enumerate(self._free):
            if start <= base and base + size <= end:
                pieces = []
                if start < base:
                    pieces.append((start, base))
                if base + size < end:
                    pieces.append((base + size, end))
                self._free[i : i + 1] = pieces
                return
        raise AllocationError("internal: carving outside free space")

    def _coalesce(self) -> None:
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for start, end in self._free:
            if merged and merged[-1][1] == start:
                merged[-1] = (merged[-1][0], end)
            else:
                merged.append((start, end))
        self._free = merged

    def release(self, name: str) -> None:
        region = self._regions.pop(name, None)
        if region is None:
            raise AllocationError(f"unknown region {name!r}")
        for b in region.chunks:
            self._free.append((b, b + region.chunk_bytes))
        self._coalesce()

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #

    def verify_pinning(self, region: Region, samples: int = 256) -> bool:
        """Pinned ID bits are constant over every sampled virtual offset."""
        if region.constraint is None:
            return True
        c = region.constraint
        masks = self.mapping.pim_id_masks(c.level)
        stride = max(PAGE_BYTES, region.size // samples)
        for off in range(0, region.size, stride):
            pa = region.translate(off)
            for idx, val in c.bit_values:
                if parity(pa & masks[idx]) != val:
                    return False
        return True

    def verify_consistent_striping(self, region: Region, level: PimLevel) -> bool:
        """Chunks present the striping of an ideal contiguous allocation.

        For every chunk i, the offset->PIM map must equal what a contiguous
        aligned allocation would produce at virtual offset ``i * chunk``,
        with pinned ID bits overridden to their constant values — the
        §III-E "contiguous virtual addresses remain aligned in the DRAM
        space" requirement.
        """
        import numpy as np

        offs = np.arange(
            0, region.chunk_bytes, self.mapping.geometry.block_bytes, dtype=np.uint64
        )
        pinned = dict(region.constraint.bit_values) if region.constraint else {}
        for i, b in enumerate(region.chunks):
            actual = self.mapping.pim_ids(np.uint64(b) + offs, level)
            expected = self.mapping.pim_ids(
                np.uint64(i * region.chunk_bytes) + offs, level
            )
            for bit, val in pinned.items():
                mask = np.uint64(1 << bit)
                expected = np.where(
                    val, expected | mask, expected & ~mask
                ).astype(np.uint64)
            if not np.array_equal(actual, expected):
                return False
        return True
