"""OS memory-management substrate: colored frame allocation + translation.

StepStone requires weight matrices to be physically contiguous and aligned
so the XOR mapping's striping is predictable, and PIM subsetting requires
*coloring* — keeping chosen PIM-ID bits constant across an allocation
(§III-E, building on Chopim's coloring interface [9]).  The PIM controller
then needs only infrequent address translation because regions are
contiguous (§IV).  This package implements that substrate: a physical frame
allocator with color constraints, a region registry, and the controller's
translation engine.
"""

from repro.osmem.allocator import (
    AllocationError,
    ColorConstraint,
    ColoredFrameAllocator,
    Region,
)
from repro.osmem.translation import TranslationEngine

__all__ = [
    "AllocationError",
    "ColorConstraint",
    "ColoredFrameAllocator",
    "Region",
    "TranslationEngine",
]
