"""Roofline models for Figs. 1 and 7."""

from repro.roofline.model import Roofline, RooflinePoint, gemm_operational_intensity

__all__ = ["Roofline", "RooflinePoint", "gemm_operational_intensity"]
