"""Roofline arithmetic for the Figs. 1 and 7 plots.

A roofline bounds achievable GFLOP/s by ``min(peak_flops, OI * bandwidth)``
where OI is operational intensity (FLOPs per byte moved from the bounding
memory level).  For the paper's GEMMs the bounding traffic is the
memory-resident weight matrix plus the (much smaller) activations, so OI
grows roughly linearly with batch size — which is why small-batch inference
sits on the bandwidth-slanted part of the roof for every platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.core.gemm import GemmShape

__all__ = ["Roofline", "RooflinePoint", "gemm_operational_intensity"]


def gemm_operational_intensity(shape: GemmShape, weights_resident: bool = False) -> float:
    """FLOPs per byte for C[m,n] = A[m,k] B[k,n].

    ``weights_resident=True`` counts only activation traffic (weights cached)
    — not used for the paper's scenarios but useful for sensitivity studies.
    """
    flops = shape.flops
    act_bytes = 4.0 * (shape.k * shape.n + shape.m * shape.n)
    bytes_moved = act_bytes if weights_resident else shape.weight_bytes + act_bytes
    return flops / bytes_moved


@dataclass(frozen=True)
class RooflinePoint:
    """One measured/modelled point under a roofline."""

    label: str
    oi: float  # FLOPs/byte
    gflops: float

    @property
    def bound(self) -> str:
        return "memory" if self.gflops < 0.98 * self.oi * 1e9 else "unknown"


@dataclass(frozen=True)
class Roofline:
    """A single platform roofline."""

    name: str
    peak_gflops: float
    bandwidth_gbps: float

    def attainable_gflops(self, oi: float) -> float:
        """min(peak, OI x BW) — the classic roofline bound."""
        if oi <= 0:
            raise ValueError("operational intensity must be positive")
        return min(self.peak_gflops, oi * self.bandwidth_gbps)

    @property
    def ridge_oi(self) -> float:
        """OI at which the platform turns compute bound."""
        return self.peak_gflops / self.bandwidth_gbps

    def is_memory_bound(self, oi: float) -> bool:
        return oi < self.ridge_oi

    def sweep(self, ois: Iterable[float]) -> List[RooflinePoint]:
        return [
            RooflinePoint(self.name, oi, self.attainable_gflops(oi)) for oi in ois
        ]
