"""Request-span tracing: where every request's lifetime actually went.

The report layers answer *how the run did* (p99, goodput, $/hr); none of
them can answer *why this request was slow*.  A span recorder turns the
kernel's events into per-request lifecycle segments — ``queued`` →
``prefill``/``serve``/``decode`` → ``sequence``/``failed``/``rejected``,
with ``preempted`` gaps in between — each carrying the node id, batch
width, and KV high-water it ran under.  Three consumers sit on top:

* :meth:`SpanRecorder.chrome_trace` — the Chrome ``trace_event`` JSON
  format, loadable in ``chrome://tracing`` or Perfetto, one lane (tid)
  per request and one per engine/node execution stream;
* :meth:`SpanRecorder.waterfall` — a plain-text waterfall of the N
  slowest requests for terminals and CI logs;
* the exact-accounting totals (:meth:`SpanRecorder.count` /
  :meth:`SpanRecorder.total_s`) the ``serve-observe`` experiment ties
  against report aggregates with ``==``, not ``approx`` — spans carry
  the *same floats* the reports compute from, accumulated in the same
  order.

Memory stays flat on streaming runs: retained spans live in a ring
(``deque(maxlen=cap)``), while the per-phase counters keep exact totals
across evictions — a 10M-request run keeps its last ``cap`` spans and
its full accounting.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, NamedTuple, Optional, Tuple

__all__ = ["Span", "SpanRecorder", "validate_chrome_trace"]

#: Lifecycle phases a request-level span may carry (engine-level
#: execution spans — ``batch``, ``prefill-pass``, ``decode-step`` — use
#: ``req_id=-1`` and describe the machine, not one request).
REQUEST_PHASES = (
    "queued",
    "serve",
    "prefill",
    "decode",
    "sequence",
    "rejected",
    "failed",
    "preempted",
)

#: One-glyph legend used by the text waterfall.
_PHASE_GLYPHS = {
    "queued": ".",
    "serve": "s",
    "prefill": "p",
    "decode": "d",
    "sequence": "-",
    "rejected": "x",
    "failed": "!",
    "preempted": "~",
}


class Span(NamedTuple):
    """One closed interval of a request's (or an engine's) lifetime.

    Durations are stored, not recomputed: ``dur_s`` is the exact float
    the emitting engine accounted with, so summing spans reproduces
    report totals bit-for-bit.
    """

    #: Request/sequence id the span belongs to; ``-1`` for engine-level
    #: execution spans (a dispatched batch, a prefill pass, a decode step).
    req_id: int
    #: Lifecycle phase label (see :data:`REQUEST_PHASES`) or an
    #: engine-level label (``batch``, ``prefill-pass``, ``decode-step``).
    phase: str
    #: Simulated start instant, seconds.
    start_s: float
    #: Exact duration in seconds as the engine accounted it.
    dur_s: float
    #: Node id the span ran on (0 for single-node engines).
    node: int = 0
    #: Batch width / charged GEMM width the span executed under.
    batch: int = 1
    #: Model name, where the emitting layer knows one.
    model: str = ""
    #: KV-cache tokens reserved when the span closed (genai spans).
    kv_tokens: int = 0
    #: Tokens emitted by/within the span (genai spans).
    tokens: int = 0

    @property
    def end_s(self) -> float:
        """Simulated end instant (``start_s + dur_s``)."""
        return self.start_s + self.dur_s


class SpanRecorder:
    """Ring-buffered span sink with eviction-proof phase accounting.

    Args:
        cap: Maximum retained spans.  Emission past the cap evicts the
            oldest span (``n_evicted`` counts them) while the per-phase
            count/duration totals keep accumulating exactly — streaming
            runs stay flat-memory without losing their accounting.
    """

    __slots__ = ("cap", "n_emitted", "n_evicted", "_ring", "_totals")

    def __init__(self, cap: int = 100_000) -> None:
        if cap <= 0:
            raise ValueError("cap must be positive")
        self.cap = int(cap)
        #: Spans emitted over the recorder's lifetime (evicted included).
        self.n_emitted = 0
        #: Spans pushed out of the ring by later emissions.
        self.n_evicted = 0
        self._ring: Deque[Span] = deque(maxlen=self.cap)
        self._totals: Dict[str, List[float]] = {}

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"SpanRecorder(cap={self.cap}, retained={len(self._ring)}, "
            f"emitted={self.n_emitted}, evicted={self.n_evicted})"
        )

    # ------------------------------------------------------------------ #
    # Emission
    # ------------------------------------------------------------------ #

    def emit(
        self,
        req_id: int,
        phase: str,
        start_s: float,
        dur_s: float,
        node: int = 0,
        batch: int = 1,
        model: str = "",
        kv_tokens: int = 0,
        tokens: int = 0,
    ) -> None:
        """Record one span (the engines' only write path).

        Args:
            req_id: Request/sequence id, or ``-1`` for engine-level spans.
            phase: Phase label (``queued``, ``serve``, ``prefill-pass``, ...).
            start_s: Simulated start instant.
            dur_s: Exact duration the engine accounted (may be 0.0 — an
                instantaneous rejection).
            node: Node id the span ran on.
            batch: Batch width / charged GEMM width.
            model: Model name when known.
            kv_tokens: KV tokens reserved when the span closed.
            tokens: Tokens emitted within the span.
        """
        if len(self._ring) == self.cap:
            self.n_evicted += 1
        self._ring.append(
            Span(req_id, phase, start_s, dur_s, node, batch, model, kv_tokens, tokens)
        )
        self.n_emitted += 1
        tot = self._totals.get(phase)
        if tot is None:
            tot = self._totals[phase] = [0, 0.0]
        tot[0] += 1
        tot[1] += dur_s

    # ------------------------------------------------------------------ #
    # Eviction-proof accounting
    # ------------------------------------------------------------------ #

    @property
    def spans(self) -> List[Span]:
        """Retained spans, oldest first (at most ``cap`` of them)."""
        return list(self._ring)

    def phases(self) -> List[str]:
        """Phase labels seen so far, in first-emission order."""
        return list(self._totals)

    def count(self, phase: str) -> int:
        """Spans emitted with ``phase`` — exact across ring eviction."""
        tot = self._totals.get(phase)
        return int(tot[0]) if tot is not None else 0

    def total_s(self, phase: str) -> float:
        """Summed duration of every ``phase`` span ever emitted — exact
        across ring eviction, accumulated in emission order (so it
        equals the emitting report's own running total bit-for-bit)."""
        tot = self._totals.get(phase)
        return tot[1] if tot is not None else 0.0

    # ------------------------------------------------------------------ #
    # Per-request views (over retained spans)
    # ------------------------------------------------------------------ #

    def by_request(self) -> Dict[int, List[Span]]:
        """Retained request-level spans grouped by ``req_id`` (engine-level
        ``req_id=-1`` spans excluded), each group in emission order."""
        out: Dict[int, List[Span]] = {}
        for s in self._ring:
            if s.req_id < 0:
                continue
            out.setdefault(s.req_id, []).append(s)
        return out

    def slowest(self, n: int = 8) -> List[Tuple[int, float, List[Span]]]:
        """The ``n`` slowest retained requests.

        Args:
            n: How many requests to return.

        Returns:
            ``(req_id, extent_s, spans)`` tuples sorted by descending
            extent, where extent is first span start to last span end.
        """
        ranked = [
            (rid, max(s.end_s for s in group) - min(s.start_s for s in group), group)
            for rid, group in self.by_request().items()
        ]
        ranked.sort(key=lambda t: (-t[1], t[0]))
        return ranked[:n]

    def waterfall(self, n: int = 8, width: int = 64) -> str:
        """Plain-text waterfall of the ``n`` slowest retained requests.

        Args:
            n: Requests to render (slowest first).
            width: Bar width in character cells.

        Returns:
            A multi-line chart: one lane per request, phases drawn with
            the glyph legend, time scaled to the rendered window.
        """
        slow = self.slowest(n)
        if not slow:
            return "(no request spans retained)"
        t0 = min(min(s.start_s for s in group) for _, _, group in slow)
        t1 = max(max(s.end_s for s in group) for _, _, group in slow)
        window = max(t1 - t0, 1e-12)
        legend = "  ".join(
            f"{g}={p}" for p, g in _PHASE_GLYPHS.items()
            if any(s.phase == p for _, _, group in slow for s in group)
        )
        lines = [
            f"waterfall: {len(slow)} slowest requests over "
            f"[{t0:.3f}s, {t1:.3f}s]",
            f"legend: {legend}",
        ]
        id_w = max(len(str(rid)) for rid, _, _ in slow)
        for rid, extent, group in slow:
            cells = [" "] * width
            # Longest spans first: whole-lifetime spans ("sequence")
            # paint the background, shorter phases overwrite on top.
            for s in sorted(group, key=lambda s: (-s.dur_s, s.start_s)):
                glyph = _PHASE_GLYPHS.get(s.phase, "?")
                lo = int((s.start_s - t0) / window * (width - 1))
                hi = int((s.end_s - t0) / window * (width - 1))
                for i in range(lo, max(hi, lo) + 1):
                    cells[i] = glyph
            lines.append(
                f"req {str(rid).rjust(id_w)} |{''.join(cells)}| "
                f"{extent * 1e3:.1f} ms"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # Chrome trace_event export
    # ------------------------------------------------------------------ #

    def chrome_trace(self) -> Dict[str, Any]:
        """Retained spans as a Chrome ``trace_event`` payload.

        Complete (``ph="X"``) events with microsecond timestamps, sorted
        so ``ts`` is monotonic; ``pid`` is the node, ``tid`` the request
        (engine-level spans land on ``tid=0``).  The payload loads
        directly in ``chrome://tracing`` and Perfetto.
        """
        events: List[Dict[str, Any]] = []
        for s in self._ring:
            args: Dict[str, Any] = {"batch": s.batch}
            if s.model:
                args["model"] = s.model
            if s.kv_tokens:
                args["kv_tokens"] = s.kv_tokens
            if s.tokens:
                args["tokens"] = s.tokens
            events.append(
                {
                    "name": s.phase,
                    "cat": "request" if s.req_id >= 0 else "engine",
                    "ph": "X",
                    "ts": s.start_s * 1e6,
                    "dur": s.dur_s * 1e6,
                    "pid": s.node,
                    "tid": s.req_id if s.req_id >= 0 else 0,
                    "args": args,
                }
            )
        events.sort(key=lambda e: (e["ts"], e["tid"]))
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> int:
        """Write :meth:`chrome_trace` as JSON.

        Args:
            path: Output file path.

        Returns:
            The number of trace events written.
        """
        payload = self.chrome_trace()
        with open(path, "w") as f:
            json.dump(payload, f)
            f.write("\n")
        return len(payload["traceEvents"])


def validate_chrome_trace(payload: Any) -> int:
    """Validate a payload against the Chrome ``trace_event`` schema.

    The checks the CI smoke enforces: a ``traceEvents`` list whose every
    event carries ``name``/``ph``/``ts``/``dur``/``pid``/``tid``, with
    ``ph="X"``, numeric non-negative ``ts``/``dur``, integer ids, and
    globally monotonic (non-decreasing) ``ts``.

    Args:
        payload: A parsed trace JSON object.

    Returns:
        The number of validated events.

    Raises:
        ValueError: On any schema violation.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("trace payload must be an object with 'traceEvents'")
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    prev_ts: Optional[float] = None
    for i, ev in enumerate(events):
        for field in ("name", "ph", "ts", "dur", "pid", "tid"):
            if field not in ev:
                raise ValueError(f"event {i} is missing {field!r}")
        if ev["ph"] != "X":
            raise ValueError(f"event {i}: expected complete events (ph='X')")
        ts, dur = ev["ts"], ev["dur"]
        if not isinstance(ts, (int, float)) or not isinstance(dur, (int, float)):
            raise ValueError(f"event {i}: ts/dur must be numeric")
        if ts < 0 or dur < 0:
            raise ValueError(f"event {i}: ts/dur must be non-negative")
        if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
            raise ValueError(f"event {i}: pid/tid must be integers")
        if prev_ts is not None and ts < prev_ts:
            raise ValueError(f"event {i}: ts went backwards ({ts} < {prev_ts})")
        prev_ts = ts
    return len(events)
