"""Kernel self-profiling: where a simulation run's *wall* time goes.

``BENCH_sim.json`` shows the hetero fleet loop pushing ~55k events/s
end-to-end while the bare kernel does ~600k — so the ROADMAP claims ~90%
of fleet-loop time is per-event Python churn in the handlers.  That
number was folklore; this module measures it.  A :class:`KernelProfiler`
rides :meth:`~repro.sim.kernel.DiscreteEventKernel.run` and records,
with ``perf_counter`` precision:

* per-:class:`~repro.sim.kernel.EventKind` event counts, batch counts,
  and **handler wall seconds** — handler share vs. kernel share is the
  churn claim, measured;
* heap-vs-preloaded delivery counts — how much of the run rode the O(1)
  bulk stream vs. the O(log n) heap;
* an events/s timeline sampled every N events — throughput over the run,
  not just its mean.

The result is an immutable :class:`KernelProfile`.  Profiling is opt-in
per run: when no profiler is attached the kernel executes its original
un-instrumented loop, so the disabled cost is one branch per ``run()``
call, not per event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.sim.kernel import EventKind

__all__ = ["KernelProfiler", "KernelProfile"]


def _kind_name(kind: int) -> str:
    try:
        return EventKind(kind).name
    except ValueError:
        return f"KIND_{kind}"


class KernelProfiler:
    """Accumulating per-run kernel instrumentation.

    Attach via ``RunObserver(profile=KernelProfiler())``; one profiler
    may observe several kernel runs (a sweep, or an engine warm-up plus
    the measured run) and accumulates across them.

    Args:
        sample_every: Events between timeline samples (each sample is
            one ``(sim_t, wall_s, events)`` point).
    """

    __slots__ = (
        "counts",
        "batches",
        "handler_s",
        "events",
        "wall_s",
        "stream_events",
        "heap_events",
        "runs",
        "sample_every",
        "timeline",
        "_next_sample",
    )

    def __init__(self, sample_every: int = 50_000) -> None:
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        #: Events delivered per kind (int key — the raw EventKind value).
        self.counts: Dict[int, int] = {}
        #: Handler invocations (per-instant batches) per kind.
        self.batches: Dict[int, int] = {}
        #: Wall seconds spent inside each kind's handler.
        self.handler_s: Dict[int, float] = {}
        #: Total events observed across all profiled runs.
        self.events = 0
        #: Total wall seconds inside profiled run loops.
        self.wall_s = 0.0
        #: Events delivered from the O(1) preloaded/lazy stream.
        self.stream_events = 0
        #: Events delivered from the heap.
        self.heap_events = 0
        #: Kernel runs this profiler observed.
        self.runs = 0
        self.sample_every = int(sample_every)
        #: ``(sim_t, wall_s, events)`` samples, one per ``sample_every``.
        self.timeline: List[tuple] = []
        self._next_sample = self.sample_every

    def __repr__(self) -> str:
        return (
            f"KernelProfiler(events={self.events}, runs={self.runs}, "
            f"wall_s={self.wall_s:.3f})"
        )

    def sample(self, sim_t: float, wall_s: float, events: int) -> None:
        """Record one timeline point (called by the kernel's run loop)."""
        self.timeline.append((sim_t, wall_s, events))
        self._next_sample = events + self.sample_every

    @property
    def next_sample(self) -> int:
        """Event count at which the kernel should take the next sample."""
        return self._next_sample

    def profile(self) -> "KernelProfile":
        """Freeze the accumulated state into a :class:`KernelProfile`."""
        return KernelProfile(
            events=self.events,
            wall_s=self.wall_s,
            counts={_kind_name(k): v for k, v in sorted(self.counts.items())},
            batches={_kind_name(k): v for k, v in sorted(self.batches.items())},
            handler_s={
                _kind_name(k): v for k, v in sorted(self.handler_s.items())
            },
            stream_events=self.stream_events,
            heap_events=self.heap_events,
            runs=self.runs,
            timeline=list(self.timeline),
        )


@dataclass(frozen=True)
class KernelProfile:
    """One frozen self-profile of (one or more) kernel runs."""

    #: Total events delivered.
    events: int
    #: Wall seconds inside the profiled run loops.
    wall_s: float
    #: Events per :class:`~repro.sim.kernel.EventKind` name.
    counts: Dict[str, int] = field(default_factory=dict)
    #: Handler invocations (per-instant batches) per kind name.
    batches: Dict[str, int] = field(default_factory=dict)
    #: Wall seconds inside each kind's handler.
    handler_s: Dict[str, float] = field(default_factory=dict)
    #: Events delivered from the preloaded/lazy stream.
    stream_events: int = 0
    #: Events delivered from the heap.
    heap_events: int = 0
    #: Kernel runs observed.
    runs: int = 0
    #: ``(sim_t, wall_s, events)`` throughput samples.
    timeline: List[tuple] = field(default_factory=list)

    @property
    def events_per_s(self) -> float:
        """Mean delivered events per wall second (0.0 for an empty run)."""
        if self.wall_s <= 0:
            return 0.0
        return self.events / self.wall_s

    @property
    def handler_total_s(self) -> float:
        """Wall seconds inside handlers, summed over kinds."""
        return sum(self.handler_s.values())

    @property
    def handler_share(self) -> float:
        """Fraction of run-loop wall time spent inside handlers — the
        measured value of the ROADMAP's "per-event Python churn" claim
        (the remainder is the kernel itself: heap/stream merging,
        batching, and clock bookkeeping)."""
        if self.wall_s <= 0:
            return 0.0
        return min(1.0, self.handler_total_s / self.wall_s)

    @property
    def stream_share(self) -> float:
        """Fraction of events delivered from the O(1) preloaded stream
        rather than the heap."""
        total = self.stream_events + self.heap_events
        if total <= 0:
            return 0.0
        return self.stream_events / total

    def rows(self) -> List[Dict[str, Any]]:
        """Per-kind breakdown rows (for tables and charts), heaviest
        handler first."""
        out = []
        for name in sorted(
            self.counts, key=lambda n: -self.handler_s.get(n, 0.0)
        ):
            h = self.handler_s.get(name, 0.0)
            out.append(
                {
                    "kind": name,
                    "events": self.counts[name],
                    "batches": self.batches.get(name, 0),
                    "handler_ms": h * 1e3,
                    "share_pct": 100.0 * h / self.wall_s if self.wall_s > 0 else 0.0,
                }
            )
        return out

    def summary(self) -> str:
        """Multi-line human-readable digest of the profile."""
        lines = [
            f"kernel profile: {self.events} events in {self.wall_s:.3f}s wall "
            f"({self.events_per_s:,.0f} events/s, {self.runs} run(s))",
            f"  handler share {self.handler_share * 100:.1f}% "
            f"(kernel {100 - self.handler_share * 100:.1f}%), "
            f"stream-delivered {self.stream_share * 100:.1f}%",
        ]
        for r in self.rows():
            lines.append(
                f"  {r['kind']:>11}: {r['events']:>9} events "
                f"{r['batches']:>9} batches  {r['handler_ms']:>9.1f} ms "
                f"({r['share_pct']:.1f}%)"
            )
        return "\n".join(lines)
