"""Observability for the serving loops: spans, telemetry, self-profiling.

Three orthogonal instruments behind one optional hook:

* :class:`~repro.obs.trace.SpanRecorder` — per-request lifecycle spans
  (Chrome trace export, text waterfall, exact phase accounting);
* :class:`~repro.obs.telemetry.Telemetry` — a process-wide bus of
  counters/gauges/histograms with scoped labels;
* :class:`~repro.obs.profile.KernelProfiler` — per-event-kind counts and
  handler wall time inside the discrete-event kernel.

A :class:`RunObserver` bundles any subset and threads through every run
loop — ``OnlineServingEngine.run(..., obs=...)``, ``Cluster.run``,
``ElasticCluster.run``, ``HeteroElasticCluster.run``,
``GenerativeEngine.run`` — and down into
:meth:`~repro.sim.kernel.DiscreteEventKernel.run`.  The default
(``obs=None``) leaves every loop on its original code path: golden
traces stay bit-identical and the disabled cost is one branch per run,
not per event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.profile import KernelProfile, KernelProfiler
from repro.obs.telemetry import BUS, ScopedTelemetry, Telemetry
from repro.obs.trace import Span, SpanRecorder, validate_chrome_trace

__all__ = [
    "Span",
    "SpanRecorder",
    "validate_chrome_trace",
    "Telemetry",
    "ScopedTelemetry",
    "BUS",
    "KernelProfiler",
    "KernelProfile",
    "RunObserver",
]


@dataclass
class RunObserver:
    """The optional ``obs=`` argument every run loop accepts.

    Any field may be ``None``; each engine checks per instrument, so a
    trace-only observer costs nothing in profiling and vice versa.
    """

    #: Span sink for request lifecycle tracing.
    spans: Optional[SpanRecorder] = None
    #: Kernel self-profiler (per-kind counts + handler wall time).
    profile: Optional[KernelProfiler] = None
    #: Telemetry bus the loops report run counts to.
    telemetry: Optional[Telemetry] = None

    @classmethod
    def tracing(cls, cap: int = 100_000) -> "RunObserver":
        """An observer that records spans only.

        Args:
            cap: Span ring capacity (see :class:`SpanRecorder`).
        """
        return cls(spans=SpanRecorder(cap=cap))

    @classmethod
    def profiling(cls, sample_every: int = 50_000) -> "RunObserver":
        """An observer that self-profiles the kernel only.

        Args:
            sample_every: Events between timeline samples.
        """
        return cls(profile=KernelProfiler(sample_every=sample_every))

    @classmethod
    def full(cls, cap: int = 100_000) -> "RunObserver":
        """Spans + profiler + a fresh enabled telemetry bus.

        Args:
            cap: Span ring capacity.
        """
        return cls(
            spans=SpanRecorder(cap=cap),
            profile=KernelProfiler(),
            telemetry=Telemetry(enabled=True),
        )
