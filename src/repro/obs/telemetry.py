"""A process-wide telemetry bus: named counters, gauges, and histograms.

The report classes aggregate *per run*; telemetry aggregates *across*
runs and layers — one bus can watch a whole sweep, a fleet and its
nodes, or an engine and the kernel underneath it, keyed by metric name
plus a label set (``node=3, pool="gpu", backend="stepstone"``).  The
primitives are PR 6's streaming core: histograms ride
:class:`~repro.sim.stats.StreamStats` (exact count/mean/min/max plus the
:class:`~repro.sim.stats.QuantileSketch` percentile estimate), so a
histogram of 10M observations stays O(1) in memory.

Disabled buses are free: every write method returns after one attribute
check, allocates nothing, and touches no dict — the engines can leave
telemetry calls inline on hot paths without a measurable disabled cost.
The module-level :data:`BUS` is the process-wide default, disabled until
:meth:`Telemetry.enable` is called.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.sim.stats import StreamStats

__all__ = ["Telemetry", "ScopedTelemetry", "BUS", "record_fast_fallback"]

#: Canonical metric-key type: (name, sorted (label, value) pairs).
MetricKey = Tuple[str, Tuple[Tuple[str, Any], ...]]


def _key(name: str, labels: Dict[str, Any]) -> MetricKey:
    return (name, tuple(sorted(labels.items())))


class Telemetry:
    """One bus of named counters/gauges/histograms with scoped labels."""

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        """Create a bus.

        Args:
            enabled: When ``False`` every write is a no-op costing one
                attribute check (flip later with :meth:`enable`).
        """
        self.enabled = enabled
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, StreamStats] = {}

    def __repr__(self) -> str:
        return (
            f"Telemetry(enabled={self.enabled}, counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def enable(self) -> "Telemetry":
        """Turn the bus on; returns ``self`` for chaining."""
        self.enabled = True
        return self

    def disable(self) -> "Telemetry":
        """Turn the bus off (writes become one-attribute-check no-ops)."""
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every series (counters, gauges, histograms)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to the counter ``name`` under ``labels``."""
        if not self.enabled:
            return
        k = _key(name, labels)
        self._counters[k] = self._counters.get(k, 0.0) + value

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge ``name`` under ``labels`` to ``value``."""
        if not self.enabled:
            return
        self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Add one sample to the histogram ``name`` under ``labels``."""
        if not self.enabled:
            return
        k = _key(name, labels)
        h = self._histograms.get(k)
        if h is None:
            h = self._histograms[k] = StreamStats()
        h.add(value)

    def record_counts(self, scope: str, **counts: float) -> None:
        """Bump one counter per keyword under a ``scope`` label — the
        one-call form the run loops use at finalize time.

        Args:
            scope: Value of the ``scope`` label (``"engine"``,
                ``"cluster"``, ``"genai"``, ...).
            **counts: Counter name -> increment.
        """
        if not self.enabled:
            return
        for name, value in counts.items():
            self.inc(name, value, scope=scope)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #

    def counter(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0.0 when never incremented)."""
        return self._counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: Any) -> float:
        """Last value set on a gauge (NaN when never set)."""
        return self._gauges.get(_key(name, labels), float("nan"))

    def histogram(self, name: str, **labels: Any) -> StreamStats:
        """The histogram series (an empty one when never observed)."""
        return self._histograms.get(_key(name, labels), StreamStats())

    def scoped(self, **labels: Any) -> "ScopedTelemetry":
        """A view that stamps ``labels`` onto every write.

        Args:
            **labels: Labels merged into each call (call-site labels win
                on collision).

        Returns:
            A :class:`ScopedTelemetry` bound to this bus.
        """
        return ScopedTelemetry(self, labels)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every series as plain data (for dumps and assertions).

        Returns:
            ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``
            keyed by ``name{label=value,...}`` strings; histogram values
            are ``{count, mean, min, max}`` dicts.
        """

        def fmt(k: MetricKey) -> str:
            name, labels = k
            if not labels:
                return name
            inner = ",".join(f"{lk}={lv}" for lk, lv in labels)
            return f"{name}{{{inner}}}"

        return {
            "counters": {fmt(k): v for k, v in sorted(self._counters.items())},
            "gauges": {fmt(k): v for k, v in sorted(self._gauges.items())},
            "histograms": {
                fmt(k): {
                    "count": h.count,
                    "mean": h.mean,
                    "min": h.min,
                    "max": h.max,
                }
                for k, h in sorted(self._histograms.items())
            },
        }


class ScopedTelemetry:
    """A label-bound view of a :class:`Telemetry` bus.

    Produced by :meth:`Telemetry.scoped`; every write delegates to the
    underlying bus with the bound labels merged in, so a node can hold
    ``bus.scoped(node=3, pool="gpu")`` and write unqualified names.
    """

    __slots__ = ("bus", "labels")

    def __init__(self, bus: Telemetry, labels: Dict[str, Any]) -> None:
        """Bind ``labels`` over ``bus`` (use :meth:`Telemetry.scoped`)."""
        self.bus = bus
        self.labels = dict(labels)

    def __repr__(self) -> str:
        return f"ScopedTelemetry({self.labels})"

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Counter increment with the bound labels merged in."""
        self.bus.inc(name, value, **{**self.labels, **labels})

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        """Gauge set with the bound labels merged in."""
        self.bus.gauge(name, value, **{**self.labels, **labels})

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Histogram sample with the bound labels merged in."""
        self.bus.observe(name, value, **{**self.labels, **labels})


#: The process-wide default bus — disabled until someone calls
#: ``BUS.enable()``, so importing this module costs nothing.
BUS = Telemetry(enabled=False)


def record_fast_fallback(loop: str, reason: str, obs: Any = None) -> None:
    """Count one declined fast-path engagement, labeled by cause.

    Every serving loop's ``fast=True`` gate calls this with the *first*
    condition that disqualified the vectorized path (``"spans"``,
    ``"profiler"``, ``"streaming-record"``, ``"custom-router"``,
    ``"presorted-stream"``, ``"empty-stream"``) — so a sweep that meant
    to run fast but silently fell back is visible as a labeled counter
    instead of a mystery slowdown.  The increment lands on the
    process-wide :data:`BUS` and, when the run carries its own
    telemetry, on that bus too.

    Args:
        loop: The run loop that fell back (``"engine"``, ``"cluster"``,
            ``"elastic"``, ``"hetero"``, ``"genai"``).
        reason: The first failing gate condition.
        obs: The run's optional :class:`~repro.obs.RunObserver`.
    """
    BUS.inc("fast_fallback", loop=loop, reason=reason)
    bus = getattr(obs, "telemetry", None) if obs is not None else None
    if bus is not None and bus is not BUS:
        bus.inc("fast_fallback", loop=loop, reason=reason)
