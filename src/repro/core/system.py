"""High-level facade: a configured StepStone PIM system.

`StepStoneSystem` bundles a DRAM geometry, an address mapping, the Table II
PIM unit configurations, and the timing model into one object with ergonomic
entry points — the interface examples and downstream users work against.

Example
-------
>>> from repro import StepStoneSystem, PimLevel
>>> sys_ = StepStoneSystem.default()
>>> r = sys_.run_gemm(m=1024, k=4096, n=4, level=PimLevel.BANKGROUP)
>>> r.breakdown.total > 0
True
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import PimUnitConfig, StepStoneConfig
from repro.core.executor import GemmResult, execute_gemm
from repro.core.functional import FunctionalStats, functional_gemm
from repro.core.gemm import GemmShape
from repro.core.scheduler import PimChoice, choose_execution
from repro.mapping.analysis import FootprintAnalysis
from repro.mapping.presets import make_skylake
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["StepStoneSystem"]


class StepStoneSystem:
    """A complete StepStone-PIM-enabled main-memory system."""

    def __init__(
        self,
        config: Optional[StepStoneConfig] = None,
        mapping: Optional[XORAddressMapping] = None,
    ) -> None:
        self.config = config or StepStoneConfig.default()
        self.mapping = mapping or make_skylake(self.config.geometry)
        if self.mapping.geometry != self.config.geometry:
            raise ValueError("mapping and config geometries disagree")

    @staticmethod
    def default() -> "StepStoneSystem":
        """Table II baseline: DDR4-2400R, Skylake mapping."""
        return StepStoneSystem()

    # ------------------------------------------------------------------ #
    # Analysis and execution
    # ------------------------------------------------------------------ #

    def analyze(
        self, m: int, k: int, level: PimLevel, pinned_id_bits: int = 0
    ) -> FootprintAnalysis:
        """Block-group analysis of an M x K weight matrix at *level*."""
        shape = GemmShape(m, k, 1).padded(
            word_bytes=self.config.word_bytes,
            block_bytes=self.mapping.geometry.block_bytes,
        )
        return FootprintAnalysis(
            self.mapping,
            level,
            shape.m,
            shape.k,
            word_bytes=self.config.word_bytes,
            pinned_id_bits=pinned_id_bits,
        )

    def run_gemm(
        self,
        m: int,
        k: int,
        n: int,
        level: Optional[PimLevel] = None,
        agen: str = "stepstone",
        flow: str = "stepstone",
        pinned_id_bits: int = 0,
        unit: Optional[PimUnitConfig] = None,
    ) -> GemmResult:
        """Execute one GEMM; ``level=None`` lets the scheduler choose."""
        shape = GemmShape(m, k, n)
        if level is None:
            return choose_execution(
                self.config, self.mapping, shape, agen=agen, flow=flow
            ).result
        return execute_gemm(
            self.config,
            self.mapping,
            shape,
            level,
            agen=agen,
            flow=flow,
            pinned_id_bits=pinned_id_bits,
            unit=unit,
        )

    def choose(self, m: int, k: int, n: int, **kwargs) -> PimChoice:
        """Scheduler decision for one GEMM (level + subsetting)."""
        return choose_execution(self.config, self.mapping, GemmShape(m, k, n), **kwargs)

    def compare_levels(
        self,
        m: int,
        k: int,
        n: int,
        levels: Sequence[PimLevel] = (
            PimLevel.BANKGROUP,
            PimLevel.DEVICE,
            PimLevel.CHANNEL,
        ),
    ) -> Dict[PimLevel, GemmResult]:
        """Run the same GEMM at several PIM levels (Fig. 6 style)."""
        return {lvl: self.run_gemm(m, k, n, level=lvl) for lvl in levels}

    # ------------------------------------------------------------------ #
    # Functional path
    # ------------------------------------------------------------------ #

    def run_gemm_functional(
        self,
        a: np.ndarray,
        b: np.ndarray,
        level: PimLevel = PimLevel.BANKGROUP,
        pinned_id_bits: int = 0,
    ) -> tuple[np.ndarray, FunctionalStats]:
        """Value-level distributed GEMM (validation path, §IV)."""
        return functional_gemm(
            self.mapping, level, a, b, pinned_id_bits=pinned_id_bits
        )

    def describe(self) -> str:
        g = self.config.geometry
        lines = [
            f"StepStone system: {g.channels} ch x {g.ranks_per_channel} ranks x "
            f"{g.bankgroups_per_rank} BGs x {g.banks_per_bankgroup} banks, "
            f"{g.capacity_bytes / 2**30:.0f} GiB",
            self.mapping.describe(),
        ]
        for lvl, unit in self.config.units.items():
            lines.append(
                f"  {lvl.short}: {self.config.addressable_units(lvl)} units x "
                f"{unit.slices_per_unit} slices, {unit.simd_width}-wide, "
                f"{unit.scratchpad_bytes // 1024} KiB scratchpad"
            )
        return "\n".join(lines)
