"""StepStone GEMM timing executor.

Turns a :class:`~repro.core.gemm.GemmPlan` into the Fig. 6 latency breakdown:

====================  ======================================================
Phase                 Model
====================  ======================================================
Localization          DMA (or CPU, for eCHO) writes replicating B into
                      per-(PIM, group) regions at channel bandwidth.
Buffer fill (B)       PIM-local sequential reads of the reorganized B tiles,
                      once per row partition.
Buffer fill (C)       PIM-local sequential reads of the C partial tiles.
GEMM                  Per-access max(cadence, AGEN iterations, SIMD time)
                      over the exact per-(PIM, group) access pattern, plus
                      residual row-miss penalties.
Buffer drain (C)      Mirror of fill (C).
Reduction             DMA (or CPU) reads every slice's C partial and writes
                      the final C.
====================  ======================================================

The GEMM phase is evaluated on the makespan-critical PIM (the one owning the
most blocks); phases are serial, as in the paper's stacked bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.agen import naive_iterations, stepstone_iteration_counts
from repro.core.config import PimUnitConfig, StepStoneConfig
from repro.core.gemm import GemmPlan, GemmShape, plan_gemm
from repro.dram.stream import sequential_stream_cycles
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["LatencyBreakdown", "GemmResult", "execute_gemm", "execute_plan"]

_U64 = np.uint64


@dataclass
class LatencyBreakdown:
    """Per-phase DRAM-clock cycles (Fig. 6 components)."""

    gemm: float = 0.0
    fill_b: float = 0.0
    fill_c: float = 0.0
    drain_c: float = 0.0
    localization: float = 0.0
    reduction: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.gemm
            + self.fill_b
            + self.fill_c
            + self.drain_c
            + self.localization
            + self.reduction
        )

    @property
    def overhead(self) -> float:
        """Everything that is not the GEMM arithmetic/stream itself."""
        return self.total - self.gemm

    def as_dict(self) -> Dict[str, float]:
        return {
            "gemm": self.gemm,
            "fill_b": self.fill_b,
            "fill_c": self.fill_c,
            "drain_c": self.drain_c,
            "localization": self.localization,
            "reduction": self.reduction,
            "total": self.total,
        }

    def __add__(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        return LatencyBreakdown(
            self.gemm + other.gemm,
            self.fill_b + other.fill_b,
            self.fill_c + other.fill_c,
            self.drain_c + other.drain_c,
            self.localization + other.localization,
            self.reduction + other.reduction,
        )

    def scaled(self, s: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            self.gemm * s,
            self.fill_b * s,
            self.fill_c * s,
            self.drain_c * s,
            self.localization * s,
            self.reduction * s,
        )


@dataclass
class GemmResult:
    """Execution result: latency breakdown plus energy-relevant volumes."""

    plan: GemmPlan
    breakdown: LatencyBreakdown
    agen: str
    flow: str
    bubble_stall_cycles: float
    kernel_launches: int
    # Energy accounting (whole GEMM, all PIMs):
    pim_dram_blocks: float = 0.0  # blocks moved inside DRAM by PIMs
    offchip_blocks: float = 0.0  # blocks crossing the channel (loc/red)
    simd_mac_ops: float = 0.0
    scratchpad_accesses: float = 0.0

    @property
    def cycles(self) -> float:
        return self.breakdown.total

    def seconds(self, clock_hz: float = 1.2e9) -> float:
        return self.breakdown.total / clock_hz


def _steady_state_row_misses(fa, mapping, rows: np.ndarray, cols: np.ndarray) -> float:
    """Row-buffer misses per group-row walk, in steady state.

    Concatenates the walks of two consecutive rows of the group and counts,
    in the second walk, accesses that revisit a bank with a different row
    open.  Group structure makes every row's walk identical, so the second
    row is representative of all subsequent rows.
    """
    g = mapping.geometry
    bb = _U64(g.block_bytes)
    r_pair = rows[:2] if len(rows) >= 2 else rows[:1]
    addr_rows = _U64(fa.base) + r_pair.astype(_U64) * _U64(fa.row_bytes)
    addrs = (addr_rows[:, None] + cols.astype(_U64)[None, :] * bb).ravel()
    rk = mapping.field_values(addrs, "rank")
    bg = mapping.field_values(addrs, "bankgroup")
    bk = mapping.field_values(addrs, "bank")
    dr = mapping.field_values(addrs, "row")
    flat = (rk * _U64(g.bankgroups_per_rank) + bg) * _U64(g.banks_per_bankgroup) + bk
    n = len(addrs)
    order = np.lexsort((np.arange(n), flat))
    fo, ro = flat[order], dr[order]
    miss = np.ones(n, dtype=bool)
    miss[1:] = (fo[1:] != fo[:-1]) | (ro[1:] != ro[:-1])
    miss_orig = np.empty(n, dtype=bool)
    miss_orig[order] = miss
    if len(r_pair) == 1:
        return float(np.sum(miss_orig))
    return float(np.sum(miss_orig[len(cols):]))


def _gemm_phase_cycles(
    config: StepStoneConfig,
    plan: GemmPlan,
    agen: str,
    naive_full_gaps: bool,
) -> tuple[float, float]:
    """(cycles, bubble_stall) of the GEMM phase on the critical PIM."""
    t = config.timing
    u = plan.unit
    fa = plan.analysis
    mapping = fa.mapping
    g = mapping.geometry
    pim = plan.max_blocks_pim
    compute = u.compute_cycles_per_block(plan.shape.n)
    base_cadence = float(u.cadence(t))
    lookahead_cover = float(u.pipeline_depth)
    total = 0.0
    stall = 0.0
    for w in plan.work[pim]:
        cols = fa.cols_of(pim, w.group)
        n_cols, n_rows = len(cols), w.n_rows
        if n_cols == 0 or n_rows == 0:
            continue
        rows = fa.rows_of_group(w.group)
        r0 = int(rows[0])
        bb = _U64(g.block_bytes)
        addrs = _U64(fa.base) + _U64(r0) * _U64(fa.row_bytes) + cols.astype(_U64) * bb

        # Per-access cadence within one row walk: tCCD_L within a bank
        # group, tCCD_S across, rank switch across ranks.
        bgs = mapping.field_values(addrs, "bankgroup")
        rks = mapping.field_values(addrs, "rank")
        cadence = np.full(n_cols, float(t.tCCDS))
        if n_cols > 1:
            same_rank = rks[1:] == rks[:-1]
            same_bg = (bgs[1:] == bgs[:-1]) & same_rank
            c = np.where(same_bg, float(t.tCCDL), float(t.tCCDS))
            c = np.where(same_rank, c, float(t.tBL + t.tRTRS))
            cadence[1:] = c
        if u.level is PimLevel.BANKGROUP:
            cadence[:] = base_cadence  # confined to one bank group

        # AGEN iterations per access over the full group trace.
        n_blk = n_cols * n_rows
        if agen == "stepstone":
            iters = stepstone_iteration_counts(n_blk).astype(np.float64)
        elif agen == "naive":
            within = naive_iterations(addrs, g.block_bytes).astype(np.float64)
            iters = np.tile(within, n_rows)
            if naive_full_gaps and n_rows > 1:
                # Charge the true block gap between the last block of one
                # group row and the first of the next.
                row_gap_rows = float(np.mean(np.diff(rows))) if n_rows > 1 else 1.0
                trans_gap = max(
                    1.0,
                    row_gap_rows * fa.blocks_per_row
                    - float(cols[-1])
                    + float(cols[0]),
                )
                iters[n_cols::n_cols] = trans_gap
            else:
                iters[n_cols::n_cols] = 2.0  # loop-assisted row advance
        else:
            raise ValueError(f"unknown agen {agen!r}")

        cad_tiled = np.tile(cadence, n_rows)
        base = np.maximum(cad_tiled, compute)
        # The AGEN runs ahead of the access pipeline through a
        # pipeline_depth-deep FIFO, so transient long iteration counts
        # borrow earlier slack; the pipe only starves once the cumulative
        # iteration deficit exceeds the run-ahead credit (§III-A/§V-C:
        # "its latency can always be hidden within the pipeline").
        deficit = np.cumsum(iters - base)
        group_stall = max(0.0, float(deficit.max()) - lookahead_cover)
        total += float(np.sum(base)) + group_stall
        stall += group_stall

        # Residual row-buffer miss penalties.  A miss happens only when a
        # bank is revisited with a *different* row open, so track per-bank
        # last-seen rows over two consecutive group rows and count the
        # steady-state misses of the second.  The deep pipeline lets
        # StepStone pre-activate upcoming rows, hiding all but
        # (penalty - pipeline) cycles; the naive generator cannot run ahead
        # and pays the full penalty.
        crossings_per_row = _steady_state_row_misses(fa, mapping, rows, cols)
        crossings_total = crossings_per_row * n_rows
        if agen == "stepstone":
            per_miss = max(0.0, t.row_miss_penalty - lookahead_cover)
        else:
            per_miss = float(t.row_miss_penalty)
        total += crossings_total * per_miss
    # Refresh steals a fixed fraction of PIM-visible time.
    total *= 1.0 / (1.0 - t.refresh_overhead)
    return total, stall


def execute_plan(
    config: StepStoneConfig,
    plan: GemmPlan,
    agen: str = "stepstone",
    flow: str = "stepstone",
    naive_full_gaps: bool = True,
    launch_delay_cycles: float = 0.0,
) -> GemmResult:
    """Run the timing model over an existing plan.

    ``flow='stepstone'`` uses the PIM-controller DMA engine for
    localization/reduction and one long-running kernel per PIM;
    ``flow='echo'`` (enhanced Chopim) runs the same block-grouped GEMM but
    performs localization/reduction on CPU cores and launches one kernel per
    dot-product row.  ``launch_delay_cycles`` adds per-launch command-channel
    delay (used by the colocation study, Fig. 13).
    """
    if flow not in ("stepstone", "echo"):
        raise ValueError(f"unknown flow {flow!r}")
    t = config.timing
    u = plan.unit
    shape = plan.shape
    dma = config.dma
    cadence = float(u.cadence(t))
    bpr = config.geometry.blocks_per_row

    gemm_cycles, stall = _gemm_phase_cycles(config, plan, agen, naive_full_gaps)

    pim = plan.max_blocks_pim
    fill_b = sequential_stream_cycles(
        plan.fill_b_blocks(pim), t, cadence=cadence, blocks_per_row=bpr
    ) if plan.fill_b_blocks(pim) else 0.0
    fill_c = sequential_stream_cycles(
        plan.fill_c_blocks(pim), t, cadence=cadence, blocks_per_row=bpr
    ) if plan.fill_c_blocks(pim) else 0.0
    drain_c = fill_c

    chan_bw = dma.bytes_per_cycle_per_channel * config.channels
    loc_bytes = plan.localization_write_words * config.word_bytes
    red_bytes = (plan.reduction_read_words + plan.reduction_write_words) * config.word_bytes
    loc_blocks = loc_bytes / 64.0
    red_blocks = red_bytes / 64.0
    if flow == "stepstone":
        localization = loc_bytes / chan_bw + loc_blocks * dma.per_block_overhead_cycles
        reduction = red_bytes / chan_bw + red_blocks * dma.per_block_overhead_cycles
    else:
        localization = (
            loc_bytes / (chan_bw * dma.cpu_efficiency)
            + loc_blocks * dma.cpu_per_block_overhead_cycles
        )
        reduction = (
            red_bytes / (chan_bw * dma.cpu_efficiency)
            + red_blocks * dma.cpu_per_block_overhead_cycles
        )

    launches = plan.kernel_launches(flow)
    # Launch packets serialize on the command channel; under contention each
    # also waits `launch_delay_cycles`.  For the long-running StepStone
    # kernel this is negligible; for eCHO's per-dot kernels it is the
    # dominant §V-G effect.  Launches are spread over active PIMs but the
    # command channel is shared, so the critical path sees the full stream.
    launch_cycles = launches * (dma.kernel_launch_cycles + launch_delay_cycles)
    launch_cycles /= max(1, config.channels)
    gemm_cycles += launch_cycles

    blocks_per_pim = plan.gemm_blocks_per_pim
    total_blocks = float(sum(blocks_per_pim.values()))
    fill_blocks_all = float(
        sum(plan.fill_b_blocks(p) + 2 * plan.fill_c_blocks(p) for p in plan.work)
    )
    simd_macs = float(plan.shape.m) * plan.shape.k * plan.shape.n
    # Scratchpad: one read per operand pair per MAC plus C update traffic.
    scratch = 2.0 * simd_macs / u.simd_width

    return GemmResult(
        plan=plan,
        breakdown=LatencyBreakdown(
            gemm=gemm_cycles,
            fill_b=fill_b,
            fill_c=fill_c,
            drain_c=drain_c,
            localization=localization,
            reduction=reduction,
        ),
        agen=agen,
        flow=flow,
        bubble_stall_cycles=stall,
        kernel_launches=launches,
        pim_dram_blocks=total_blocks + fill_blocks_all,
        offchip_blocks=loc_blocks + red_blocks,
        simd_mac_ops=simd_macs,
        scratchpad_accesses=scratch,
    )


def execute_gemm(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    agen: str = "stepstone",
    flow: str = "stepstone",
    base: int = 0,
    pinned_id_bits: int = 0,
    unit: Optional[PimUnitConfig] = None,
    naive_full_gaps: bool = True,
    launch_delay_cycles: float = 0.0,
) -> GemmResult:
    """Plan + execute one GEMM (see :func:`repro.core.gemm.plan_gemm`)."""
    plan = plan_gemm(
        config, mapping, shape, level, base=base, pinned_id_bits=pinned_id_bits, unit=unit
    )
    return execute_plan(
        config,
        plan,
        agen=agen,
        flow=flow,
        naive_full_gaps=naive_full_gaps,
        launch_delay_cycles=launch_delay_cycles,
    )
