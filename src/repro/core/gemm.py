"""StepStone GEMM planning (Algorithm 1).

Planning turns (matrix shape, PIM level, mapping) into everything the timing
executor needs:

* padded power-of-two shape (§III footnote 2);
* the footprint analysis (block groups, per-(PIM, group) columns);
* scratchpad partitioning: row partitions sized so the C tile fits, column
  partitions so the B tile fits, with the B/C split chosen by a small search
  (§V-F "We search for an optimal allocation across the scratchpad
  partitioning options");
* per-phase data volumes: localization writes, reduction reads/writes,
  per-PIM buffer fill/drain traffic, GEMM block counts;
* kernel-launch counts for the long-running StepStone kernel vs. eCHO's
  per-dot-product invocations (Algorithm 1's two inner variants).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


from repro.core.config import PimUnitConfig, StepStoneConfig
from repro.mapping.analysis import FootprintAnalysis
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["GemmShape", "GroupWork", "GemmPlan", "plan_gemm"]


def _next_pow2(x: int) -> int:
    return 1 << max(0, (x - 1).bit_length())


@dataclass(frozen=True)
class GemmShape:
    """C[m, n] += A[m, k] @ B[k, n];  A is the memory-resident weight matrix."""

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) <= 0:
            raise ValueError(f"all GEMM dimensions must be positive: {self}")

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.k * self.n

    @property
    def weight_bytes(self) -> int:
        return self.m * self.k * 4

    def padded(self, min_k: int = 16, word_bytes: int = 4, block_bytes: int = 64) -> "GemmShape":
        """Pad M and K to powers of two; K also to at least one cache block.

        N (the batch/activation dimension) is not padded — it only sizes the
        B and C tiles.  Matches the paper: non-power-of-two matrices are
        padded or partitioned (§III fn. 2).
        """
        min_k = max(min_k, block_bytes // word_bytes)
        return GemmShape(_next_pow2(self.m), max(_next_pow2(self.k), min_k), self.n)


@dataclass(frozen=True)
class GroupWork:
    """One (PIM, group) work item: how many columns/rows this PIM walks."""

    pim: int
    group: int
    n_cols: int  # block columns owned per matrix row of the group
    n_rows: int  # matrix rows in the group


@dataclass
class GemmPlan:
    """Fully-resolved execution plan for one GEMM at one PIM level."""

    shape: GemmShape  # padded shape
    orig_shape: GemmShape
    level: PimLevel
    unit: PimUnitConfig
    analysis: FootprintAnalysis
    rpart_rows: int
    cpart_blocks: int
    n_rparts: int
    scratchpad_c_fraction: float
    work: Dict[int, List[GroupWork]]  # pim -> group work items
    direct_scratchpad: bool  # small-matrix optimization (§III-E)

    # ------------------------------------------------------------------ #
    # Derived volumes (words of fp32 unless noted)
    # ------------------------------------------------------------------ #

    @property
    def n_active_pims(self) -> int:
        return len(self.work)

    @property
    def n_partials(self) -> int:
        """C partial copies the host-side engine reduces.

        One per *addressable* unit: the per-device slices behind one unit
        store their partials lane-aligned within shared cache blocks, so the
        reduction engine retires all of a unit's slices in a single pass of
        M x N words (one burst carries every slice's contribution to the
        same C elements).  This is the accounting consistent with the
        paper's Fig. 10/11 overhead magnitudes; see DESIGN.md.
        """
        return self.n_active_pims

    @property
    def localization_write_words(self) -> int:
        """DMA-written words replicating B into per-(PIM, group) regions.

        Each group needs the full K x N input once, spread over the PIMs
        owning its columns (Fig. 5), so the total is n_groups * K * N.
        """
        total_cols = sum(w.n_cols for items in self.work.values() for w in items)
        return total_cols * 16 * self.shape.n

    @property
    def reduction_read_words(self) -> int:
        return self.shape.m * self.shape.n * self.n_partials

    @property
    def reduction_write_words(self) -> int:
        return self.shape.m * self.shape.n

    @property
    def gemm_blocks_per_pim(self) -> Dict[int, int]:
        return {
            pim: sum(w.n_cols * w.n_rows for w in items)
            for pim, items in self.work.items()
        }

    @property
    def max_blocks_pim(self) -> int:
        """The PIM with the most work (the makespan-critical unit)."""
        blocks = self.gemm_blocks_per_pim
        return max(blocks, key=lambda p: blocks[p])

    def fill_b_blocks(self, pim: int) -> float:
        """Cache blocks read from PIM-local DRAM to fill B tiles (total).

        The B region of one group holds ``n_cols`` block-columns x 16 B-rows
        x N words; it is re-filled once per row partition (row partitions
        are the outer loop of Algorithm 1).
        """
        if self.direct_scratchpad:
            return 0.0
        per_pass = sum(w.n_cols * self.shape.n for w in self.work[pim])
        return float(per_pass * self.n_rparts)

    def fill_c_blocks(self, pim: int) -> float:
        """Blocks read to fill C tiles across all row partitions (total)."""
        if self.direct_scratchpad:
            return 0.0
        words = self.shape.m * self.shape.n * self.unit.slices_per_unit
        return words / 16.0

    def drain_c_blocks(self, pim: int) -> float:
        return self.fill_c_blocks(pim)

    def kernel_launches(self, flow: str) -> int:
        """PIM kernel invocations issued over the command channel.

        * ``stepstone``: one long-running kernel per active PIM per row
          partition — AGEN walks groups and partitions internally.
        * ``echo``: one kernel per DOT-product row per (rpart, group, cpart)
          (Algorithm 1's eCHO branch).
        """
        if flow == "stepstone":
            return self.n_active_pims * self.n_rparts
        if flow == "echo":
            launches = 0
            for items in self.work.values():
                for w in items:
                    n_cparts = max(1, math.ceil(w.n_cols / self.cpart_blocks))
                    rows_per_rpart = max(1, math.ceil(w.n_rows / self.n_rparts))
                    launches += self.n_rparts * n_cparts * rows_per_rpart
            return launches
        raise ValueError(f"unknown flow {flow!r}")


def _choose_partitions(
    shape: GemmShape,
    unit: PimUnitConfig,
    max_group_cols: int,
    word_bytes: int,
) -> Tuple[int, int, float]:
    """Pick (rpart_rows, cpart_blocks, c_fraction) for the scratchpad.

    Minimizes total B re-fill traffic (the only volume that scales with the
    partition counts), breaking ties toward fewer kernel iterations (larger
    column tiles).  Searches C-buffer fractions in eighths, as the paper's
    two-buffer search does.
    """
    sp = unit.scratchpad_bytes
    c_bytes_per_row = shape.n * word_bytes
    b_bytes_per_colblock = unit.words_per_block_per_slice * shape.n * word_bytes
    best: Optional[Tuple[float, float, int, int, float]] = None
    for eighths in range(1, 8):
        f = eighths / 8.0
        rpart = min(shape.m, int(f * sp // c_bytes_per_row))
        cpart = min(max_group_cols, int((1 - f) * sp // b_bytes_per_colblock))
        if rpart < 1 or cpart < 1:
            continue
        n_rparts = math.ceil(shape.m / rpart)
        refill_cost = n_rparts  # B volume scales linearly with passes
        n_cparts = math.ceil(max_group_cols / cpart)
        key = (refill_cost, n_cparts, -rpart)
        if best is None or key < best[:3]:
            best = (refill_cost, n_cparts, -rpart, cpart, f)
    if best is None:
        raise ValueError(
            f"batch {shape.n} cannot fit even one C row + one B column in a "
            f"{sp}-byte scratchpad at level {unit.level.short}; split N first"
        )
    _, _, neg_rpart, cpart, f = best
    return -neg_rpart, cpart, f


def plan_gemm(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    base: int = 0,
    pinned_id_bits: int = 0,
    unit: Optional[PimUnitConfig] = None,
) -> GemmPlan:
    """Build the Algorithm-1 execution plan for one GEMM.

    ``pinned_id_bits`` activates the §III-E subsetting optimization (each
    pinned bit halves the active PIM count and, usually, the group count).
    ``unit`` overrides the Table II unit config (relaxed-area or scratchpad
    sweeps).
    """
    u = unit or config.unit(level)
    padded = shape.padded(word_bytes=config.word_bytes, block_bytes=mapping.geometry.block_bytes)
    analysis = FootprintAnalysis(
        mapping,
        level,
        padded.m,
        padded.k,
        base=base,
        word_bytes=config.word_bytes,
        pinned_id_bits=pinned_id_bits,
    )
    work: Dict[int, List[GroupWork]] = {}
    max_group_cols = 1
    for pim in analysis.active_pim_ids():
        items: List[GroupWork] = []
        for grp in range(analysis.n_groups):
            cols = analysis.cols_of(int(pim), grp)
            if len(cols) == 0:
                continue
            rows = analysis.rows_of_group(grp)
            items.append(GroupWork(int(pim), grp, len(cols), len(rows)))
            max_group_cols = max(max_group_cols, len(cols))
        if items:
            work[int(pim)] = items
    rpart, cpart, frac = _choose_partitions(padded, u, max_group_cols, config.word_bytes)
    n_rparts = math.ceil(padded.m / rpart)

    # Small-matrix direct-scratchpad path (§III-E): B tile of the largest
    # group plus the full C partial fit per slice -> skip DRAM staging.
    b_bytes = max_group_cols * u.words_per_block_per_slice * padded.n * config.word_bytes
    c_bytes = padded.m * padded.n * config.word_bytes
    direct = (b_bytes + c_bytes) <= u.scratchpad_bytes

    if direct:
        rpart, n_rparts = padded.m, 1
        cpart = max_group_cols

    return GemmPlan(
        shape=padded,
        orig_shape=shape,
        level=level,
        unit=u,
        analysis=analysis,
        rpart_rows=rpart,
        cpart_blocks=cpart,
        n_rparts=n_rparts,
        scratchpad_c_fraction=frac,
        work=work,
        direct_scratchpad=direct,
    )
