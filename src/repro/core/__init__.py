"""StepStone PIM core: configs, AGEN, GEMM execution flow, and executor."""

from repro.core.config import (
    DMA_ENGINE,
    PimUnitConfig,
    StepStoneConfig,
    STEPSTONE_BG,
    STEPSTONE_CH,
    STEPSTONE_DV,
    pim_config,
)
from repro.core.agen import (
    ExactStepStoneAGEN,
    agen_supported,
    naive_iterations,
    stepstone_iteration_counts,
    stepstone_iterations,
)

__all__ = [
    "DMA_ENGINE",
    "PimUnitConfig",
    "StepStoneConfig",
    "STEPSTONE_BG",
    "STEPSTONE_CH",
    "STEPSTONE_DV",
    "pim_config",
    "ExactStepStoneAGEN",
    "agen_supported",
    "naive_iterations",
    "stepstone_iteration_counts",
    "stepstone_iterations",
    "GemmPlan",
    "GemmShape",
    "plan_gemm",
    "GemmResult",
    "LatencyBreakdown",
    "execute_gemm",
    "functional_gemm",
    "PimChoice",
    "choose_execution",
    "StepStoneSystem",
]

_LAZY = {
    "GemmPlan": "repro.core.gemm",
    "GemmShape": "repro.core.gemm",
    "plan_gemm": "repro.core.gemm",
    "GemmResult": "repro.core.executor",
    "LatencyBreakdown": "repro.core.executor",
    "execute_gemm": "repro.core.executor",
    "functional_gemm": "repro.core.functional",
    "PimChoice": "repro.core.scheduler",
    "choose_execution": "repro.core.scheduler",
    "StepStoneSystem": "repro.core.system",
    "FusedGemmResult": "repro.core.fusion",
    "fused_execute": "repro.core.fusion",
    "pow2_grid": "repro.core.fusion",
}


def __getattr__(name):
    # Lazy imports keep `import repro.core` cheap and break import cycles.
    mod = _LAZY.get(name)
    if mod is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(mod), name)
