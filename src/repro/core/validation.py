"""Cross-engine validation: executor timing vs. the command-level simulator.

The GEMM executor prices each PIM's access stream analytically (cadence +
AGEN bubbles + residual row misses).  This module rebuilds the *actual*
per-PIM DRAM request trace from a plan — the same (PIM, group) walks, in
execution order — and replays it through the command-level FR-FCFS
controller, giving a Ramulator-grade reference for the GEMM phase.  The
test suite asserts agreement within a tolerance band on small matrices;
experiments use the fast analytic path, with this bridge guarding it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


from repro.core.config import StepStoneConfig
from repro.core.executor import execute_plan
from repro.core.gemm import GemmShape, plan_gemm
from repro.dram.commands import BankCoord, Request
from repro.dram.controller import ChannelController
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["GemmPhaseValidation", "build_pim_trace", "validate_gemm_phase"]


@dataclass
class GemmPhaseValidation:
    """Comparison of the analytic GEMM phase against the command-level sim."""

    shape: GemmShape
    level: PimLevel
    pim: int
    executor_cycles: float
    controller_cycles: float
    accesses: int

    @property
    def ratio(self) -> float:
        return self.executor_cycles / self.controller_cycles


def build_pim_trace(
    plan, mapping: XORAddressMapping, pim: int
) -> List[Request]:
    """The critical PIM's demand stream in execution order (group-major,
    row-major within group) as controller requests."""
    g = mapping.geometry
    fa = plan.analysis
    reqs: List[Request] = []
    rid = 0
    for w in plan.work[pim]:
        addrs = fa.blocks_of(pim, w.group)
        rk = mapping.field_values(addrs, "rank")
        bg = mapping.field_values(addrs, "bankgroup")
        bk = mapping.field_values(addrs, "bank")
        row = mapping.field_values(addrs, "row")
        col = mapping.field_values(addrs, "column")
        for i in range(len(addrs)):
            reqs.append(
                Request(
                    arrival=0,
                    coord=BankCoord(int(rk[i]), int(bg[i]), int(bk[i])),
                    row=int(row[i]),
                    column=int(col[i]),
                    request_id=rid,
                )
            )
            rid += 1
    return reqs


def validate_gemm_phase(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    queue_depth: int = 16,
) -> GemmPhaseValidation:
    """Replay the critical PIM's trace through the FR-FCFS controller.

    The controller sees only this PIM's requests (a PIM owns its banks
    exclusively during the phase), with the scheduler window standing in
    for the AGEN run-ahead.  Compares against the executor's GEMM-phase
    estimate with refresh normalized out of both sides.
    """
    plan = plan_gemm(config, mapping, shape, level)
    result = execute_plan(config, plan)
    pim = plan.max_blocks_pim
    reqs = build_pim_trace(plan, mapping, pim)
    ctl = ChannelController(
        timing=config.timing,
        ranks=config.geometry.ranks_per_channel,
        bankgroups=config.geometry.bankgroups_per_rank,
        banks=config.geometry.banks_per_bankgroup,
        queue_depth=queue_depth,
        refresh=False,
    )
    stats = ctl.run(reqs)
    # Strip refresh and compute-boundedness from the executor number: the
    # controller models pure streaming.  Use the memory-only estimate.
    exec_cycles = result.breakdown.gemm * (1.0 - config.timing.refresh_overhead)
    # Remove the launch overhead included in the gemm phase.
    exec_cycles -= result.kernel_launches * config.dma.kernel_launch_cycles / config.channels
    return GemmPhaseValidation(
        shape=shape,
        level=level,
        pim=pim,
        executor_cycles=exec_cycles,
        controller_cycles=float(stats.total_cycles),
        accesses=len(reqs),
    )
