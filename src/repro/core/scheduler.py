"""PIM execution-choice heuristic (§III-E optimizations).

The paper: "a simple heuristic that estimates execution times and overheads
based on available bandwidth and transferred data volumes works well."  Our
estimator *is* the timing model, so the scheduler evaluates the candidate
configurations — bank-group vs. device level, full vs. subset PIM activation
— and picks the fastest.  This implements both §III-E knobs:

* **Choosing the PIM level** (StepStone-BG wins for N <= ~16, StepStone-DV
  beyond — Fig. 6/8 behaviour, e.g. XLM switching levels as its sequence
  grows).
* **Small weight matrices**: activating only half (or a quarter) of the
  PIMs trades arithmetic bandwidth for halved localization/reduction
  overheads (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.config import StepStoneConfig
from repro.core.executor import GemmResult, execute_gemm
from repro.core.gemm import GemmShape
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["PimChoice", "choose_execution"]


@dataclass
class PimChoice:
    """The selected execution configuration and its predicted result."""

    level: PimLevel
    pinned_id_bits: int
    result: GemmResult

    @property
    def cycles(self) -> float:
        return self.result.breakdown.total

    @property
    def n_active_pims(self) -> int:
        return self.result.plan.n_active_pims

    def describe(self) -> str:
        sub = f"/2^{self.pinned_id_bits}" if self.pinned_id_bits else ""
        return (
            f"StepStone-{self.level.short}{sub} "
            f"({self.n_active_pims} PIMs, {self.cycles:.3e} cycles)"
        )


def choose_execution(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    levels: Sequence[PimLevel] = (PimLevel.BANKGROUP, PimLevel.DEVICE),
    max_pinned_bits: int = 1,
    agen: str = "stepstone",
    flow: str = "stepstone",
) -> PimChoice:
    """Evaluate candidate (level, subset) configurations and pick the fastest.

    ``max_pinned_bits`` bounds the §III-E subsetting search (0 disables it).
    Candidates that cannot satisfy scratchpad constraints are skipped; at
    least one candidate must be feasible.
    """
    best: Optional[PimChoice] = None
    for level in levels:
        for pinned in range(0, max_pinned_bits + 1):
            n_id_bits = len(mapping.pim_id_masks(level))
            if pinned >= n_id_bits:
                continue
            try:
                res = execute_gemm(
                    config,
                    mapping,
                    shape,
                    level,
                    agen=agen,
                    flow=flow,
                    pinned_id_bits=pinned,
                )
            except ValueError:
                continue  # infeasible (e.g. batch too large for scratchpad)
            cand = PimChoice(level=level, pinned_id_bits=pinned, result=res)
            if best is None or cand.cycles < best.cycles:
                best = cand
    if best is None:
        raise ValueError(f"no feasible PIM configuration for {shape}")
    return best
