"""Functional (value-level) simulation of the StepStone GEMM flow.

The paper validates its execution flow by making Ramulator read and write
real values and checking the final output against pre-calculated results
(§IV).  This module is the equivalent here: it executes localization ->
per-(PIM, group) partial GEMMs -> reduction *through the address mapping*
(every cache block is resolved to matrix elements via its physical address)
and returns the reduced C for comparison with ``A @ B``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.mapping.analysis import FootprintAnalysis
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["FunctionalStats", "functional_gemm"]


@dataclass
class FunctionalStats:
    """Coverage bookkeeping of one functional run."""

    blocks_touched: int
    total_blocks: int
    blocks_per_pim: Dict[int, int]
    n_groups: int
    n_active_pims: int

    @property
    def complete(self) -> bool:
        return self.blocks_touched == self.total_blocks


def functional_gemm(
    mapping: XORAddressMapping,
    level: PimLevel,
    a: np.ndarray,
    b: np.ndarray,
    base: int = 0,
    pinned_id_bits: int = 0,
) -> Tuple[np.ndarray, FunctionalStats]:
    """Compute ``A @ B`` through the distributed StepStone flow.

    ``a`` is the M x K weight matrix (row-major at physical address *base*),
    ``b`` the K x N input.  M and K must be powers of two with K spanning
    whole cache blocks (call sites pad, as the planner does).

    Returns the reduced C and coverage statistics.  Values are computed in
    the input dtype's promotion with float64 accumulation, so the result is
    exactly ``A @ B`` up to reduction-order rounding.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible GEMM operands {a.shape} x {b.shape}")
    m_rows, k_cols = a.shape
    n = b.shape[1]
    fa = FootprintAnalysis(
        mapping,
        level,
        m_rows,
        k_cols,
        base=base,
        word_bytes=4,
        pinned_id_bits=pinned_id_bits,
    )
    g = mapping.geometry
    words_per_block = g.block_bytes // 4

    # Localized per-PIM partial C accumulators (the per-slice partials sum
    # to the same values, so slicing is value-transparent).
    partials: Dict[int, np.ndarray] = {}
    blocks_per_pim: Dict[int, int] = {}
    touched = 0
    for pim in fa.active_pim_ids():
        pim = int(pim)
        acc = np.zeros((m_rows, n), dtype=np.float64)
        count = 0
        for grp in range(fa.n_groups):
            cols = fa.cols_of(pim, grp)
            if len(cols) == 0:
                continue
            rows = fa.rows_of_group(grp)
            # Localization: gather the B rows this (PIM, group) needs —
            # the DMA engine's reorganized copy (Fig. 5).
            word_idx = (cols[:, None] * words_per_block + np.arange(words_per_block)).ravel()
            b_local = b[word_idx, :]
            # Group execution: every row of the group walks the same local
            # columns (the group invariant) accumulating into its C row.
            a_tiles = a[np.ix_(rows, word_idx)].astype(np.float64)
            acc[rows, :] += a_tiles @ b_local.astype(np.float64)
            count += len(cols) * len(rows)
        partials[pim] = acc
        blocks_per_pim[pim] = count
        touched += count

    # Reduction: the controller-side engine sums every partial.
    c = np.zeros((m_rows, n), dtype=np.float64)
    for acc in partials.values():
        c += acc
    stats = FunctionalStats(
        blocks_touched=touched,
        total_blocks=fa.total_blocks,
        blocks_per_pim=blocks_per_pim,
        n_groups=fa.n_groups,
        n_active_pims=fa.n_active_pims,
    )
    return c.astype(np.result_type(a.dtype, b.dtype, np.float64)), stats
