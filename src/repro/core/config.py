"""StepStone PIM configurations (Table II).

Three integration levels share one microarchitecture (Fig. 3b): SIMD lanes,
a scratchpad split between B and C buffers, control logic, and the AGEN unit.
They differ in placement and therefore in visible bandwidth:

- **StepStone-BG** — one unit per bank group *per x8 device*; the rank's 8
  devices operate in lockstep on the same addresses, each seeing its own
  8-byte slice of every 64 B cache block.  16 addressable units
  (2 ch x 2 ranks x 4 BGs), each backed by 8 device-level slices.
  Same-bank-group cadence: tCCD_L.
- **StepStone-DV** — one unit per data-buffer chip on the DIMM (8 per rank,
  again 8 B slices); 4 addressable units (ranks).  Cadence tCCD_S.
- **StepStone-CH** — one unit in the channel controller; sees whole cache
  blocks.  2 addressable units.  Cadence tCCD_S.

"Addressable" units are what the XOR mapping selects between (the PIM ID);
"slices" are the lockstep per-device datapaths behind one addressable unit.
Each slice keeps a private C partial, so the reduction volume scales with
``addressable x slices`` (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.dram.timing import DDR4Timing, DDR4_2400R
from repro.mapping.xor_mapping import DRAMGeometry, PimLevel

__all__ = [
    "PimUnitConfig",
    "DmaEngineConfig",
    "StepStoneConfig",
    "STEPSTONE_BG",
    "STEPSTONE_DV",
    "STEPSTONE_CH",
    "DMA_ENGINE",
    "pim_config",
]


@dataclass(frozen=True)
class PimUnitConfig:
    """One PIM level's microarchitecture parameters.

    ``simd_width`` counts FLOPs per cycle per slice (a fused MAC is 2 FLOPs,
    so an 8-wide unit retires 4 MACs per cycle).  ``scratchpad_bytes`` is per
    slice.  ``pipeline_depth`` is the AGEN + access pipeline (§III-A).
    """

    level: PimLevel
    simd_width: int
    scratchpad_bytes: int
    slices_per_unit: int
    clock_hz: float = 1.2e9
    pipeline_depth: int = 20
    area_mm2: float = 0.0

    def __post_init__(self) -> None:
        if self.simd_width <= 0 or self.scratchpad_bytes <= 0:
            raise ValueError("simd_width and scratchpad_bytes must be positive")
        if self.slices_per_unit not in (1, 2, 4, 8, 16):
            raise ValueError("slices_per_unit must be a small power of two")

    @property
    def words_per_block_per_slice(self) -> int:
        """fp32 words of each 64 B cache block seen by one slice."""
        return 16 // self.slices_per_unit

    def compute_cycles_per_block(self, n: int) -> float:
        """SIMD cycles for one slice to process its share of one A block.

        Each of the slice's words needs ``n`` MACs (2n FLOPs) against the
        batch dimension.
        """
        flops = 2.0 * n * self.words_per_block_per_slice
        return flops / self.simd_width

    def cadence(self, timing: DDR4Timing) -> int:
        """Best-case CAS-to-CAS spacing of this level's demand stream."""
        if self.level is PimLevel.BANKGROUP:
            return timing.tCCDL  # confined to one bank group
        return timing.tCCDS

    def relaxed(self, simd_scale: int = 2, scratchpad_scale: int = 8) -> "PimUnitConfig":
        """The Fig. 6 '*' configuration: relaxed area constraints."""
        return replace(
            self,
            simd_width=self.simd_width * simd_scale,
            scratchpad_bytes=self.scratchpad_bytes * scratchpad_scale,
        )

    def with_scratchpad(self, scratchpad_bytes: int) -> "PimUnitConfig":
        return replace(self, scratchpad_bytes=scratchpad_bytes)


@dataclass(frozen=True)
class DmaEngineConfig:
    """Replication/reduction engine at the host-side PIM controller (§III-A).

    The engine streams at channel bandwidth with a small per-block overhead;
    when localization/reduction instead runs on CPU cores (eCHO / nCHO), the
    effective bandwidth drops and a per-block instruction cost appears —
    that difference is the paper's "up to an additional 40%" (§I).
    """

    bytes_per_cycle_per_channel: float = 16.0  # 64 B / tBL
    per_block_overhead_cycles: float = 0.25  # table lookup / reorg
    cpu_efficiency: float = 0.5  # CPU-driven loc/red efficiency
    cpu_per_block_overhead_cycles: float = 2.0
    kernel_launch_cycles: float = 16.0  # command packets per kernel launch
    pei_packet_cycles: float = 4.0  # command-bus slots per PEI instruction


@dataclass(frozen=True)
class StepStoneConfig:
    """Full-system configuration: geometry + timing + per-level units."""

    geometry: DRAMGeometry
    timing: DDR4Timing
    units: Dict[PimLevel, PimUnitConfig]
    dma: DmaEngineConfig
    word_bytes: int = 4

    @property
    def channels(self) -> int:
        return self.geometry.channels

    @property
    def channel_bytes_per_cycle(self) -> float:
        return self.dma.bytes_per_cycle_per_channel

    def unit(self, level: PimLevel) -> PimUnitConfig:
        return self.units[level]

    def addressable_units(self, level: PimLevel) -> int:
        return self.geometry.num_pims(level)

    def total_slices(self, level: PimLevel) -> int:
        return self.addressable_units(level) * self.units[level].slices_per_unit

    def with_unit(self, cfg: PimUnitConfig) -> "StepStoneConfig":
        units = dict(self.units)
        units[cfg.level] = cfg
        return replace(self, units=units)

    @staticmethod
    def default() -> "StepStoneConfig":
        return StepStoneConfig(
            geometry=DRAMGeometry(),
            timing=DDR4_2400R,
            units={
                PimLevel.BANKGROUP: STEPSTONE_BG,
                PimLevel.DEVICE: STEPSTONE_DV,
                PimLevel.CHANNEL: STEPSTONE_CH,
            },
            dma=DMA_ENGINE,
        )


#: Table II: 8-wide SIMD, 8 KB scratchpad per device, 4 units per device.
STEPSTONE_BG = PimUnitConfig(
    level=PimLevel.BANKGROUP,
    simd_width=8,
    scratchpad_bytes=8 * 1024,
    slices_per_unit=8,
    area_mm2=0.15,
)

#: Table II: 32-wide SIMD, 32 KB scratchpad per buffer chip.
STEPSTONE_DV = PimUnitConfig(
    level=PimLevel.DEVICE,
    simd_width=32,
    scratchpad_bytes=32 * 1024,
    slices_per_unit=8,
    area_mm2=1.2,
)

#: Table II: 256-wide SIMD, 256 KB scratchpad per channel.
STEPSTONE_CH = PimUnitConfig(
    level=PimLevel.CHANNEL,
    simd_width=256,
    scratchpad_bytes=256 * 1024,
    slices_per_unit=1,
    area_mm2=4.8,
)

DMA_ENGINE = DmaEngineConfig()


def pim_config(level: PimLevel) -> PimUnitConfig:
    """Table II configuration for *level*."""
    return {
        PimLevel.BANKGROUP: STEPSTONE_BG,
        PimLevel.DEVICE: STEPSTONE_DV,
        PimLevel.CHANNEL: STEPSTONE_CH,
    }[level]
