"""Fused execution of non-power-of-two GEMMs (§III-E).

The paper lists "fusing multiple kernel executions for matrices that are
not powers of two" among StepStone's optimizations.  A non-pow2 matrix runs
as a grid of power-of-two tiles (binary decomposition of M and K); naive
serial execution re-localizes B for every tile and re-reduces C per tile.
Fusion exploits the tile grid's structure:

* tiles in the same **K-band** (same column range, different M ranges) need
  the same B rows — localize that band's B once;
* tiles in the same **M-band** accumulate into the same C rows — keep one
  partial per M-band and reduce it once at the end.

The GEMM/buffer phases are unchanged (every tile's blocks must still be
walked), so fusion converts the loc/red overhead from per-tile to per-band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import PimUnitConfig, StepStoneConfig
from repro.core.executor import GemmResult, LatencyBreakdown, execute_gemm
from repro.core.gemm import GemmShape
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["FusedGemmResult", "fused_execute", "pow2_grid"]


def pow2_grid(shape: GemmShape, min_dim: int = 16) -> Tuple[List[int], List[int]]:
    """Binary decompositions of M and K (largest parts first)."""

    def split(x: int) -> List[int]:
        parts: List[int] = []
        while x > 0:
            if x < min_dim:
                parts.append(min_dim)
                break
            p = 1 << (x.bit_length() - 1)
            parts.append(p)
            x -= p
        return parts

    return split(shape.m), split(shape.k)


@dataclass
class FusedGemmResult:
    """Outcome of a fused tiled execution."""

    shape: GemmShape
    level: PimLevel
    breakdown: LatencyBreakdown
    unfused_breakdown: LatencyBreakdown
    n_tiles: int

    @property
    def savings_fraction(self) -> float:
        u, f = self.unfused_breakdown.total, self.breakdown.total
        return (u - f) / u if u else 0.0


def fused_execute(
    config: StepStoneConfig,
    mapping: XORAddressMapping,
    shape: GemmShape,
    level: PimLevel,
    unit: Optional[PimUnitConfig] = None,
) -> FusedGemmResult:
    """Execute a (possibly non-pow2) GEMM as a fused tile grid.

    Returns both the fused and the naive per-tile breakdowns so callers
    (and the ablation bench) can quantify the fusion benefit.
    """
    m_parts, k_parts = pow2_grid(shape, min_dim=16)
    results: Dict[Tuple[int, int], GemmResult] = {}
    for mi in m_parts:
        for ki in k_parts:
            key = (mi, ki)
            if key not in results:
                results[key] = execute_gemm(
                    config, mapping, GemmShape(mi, ki, shape.n), level, unit=unit
                )

    unfused = LatencyBreakdown()
    for mi in m_parts:
        for ki in k_parts:
            unfused = unfused + results[(mi, ki)].breakdown

    fused = LatencyBreakdown()
    for mi in m_parts:
        for ki in k_parts:
            b = results[(mi, ki)].breakdown
            # Localization of a K-band's B happens once (on its first,
            # largest M tile); reduction of an M-band's C happens once (on
            # its first, largest K tile).
            loc = b.localization if mi == m_parts[0] else 0.0
            red = b.reduction if ki == k_parts[0] else 0.0
            fused = fused + LatencyBreakdown(
                gemm=b.gemm,
                fill_b=b.fill_b,
                fill_c=b.fill_c,
                drain_c=b.drain_c,
                localization=loc,
                reduction=red,
            )
    return FusedGemmResult(
        shape=shape,
        level=level,
        breakdown=fused,
        unfused_breakdown=unfused,
        n_tiles=len(m_parts) * len(k_parts),
    )
