"""StepStone memory-side address generation (AGEN, §III-D).

The set of cache-block offsets belonging to one (PIM, block-group) pair is an
*affine subspace* of the footprint over GF(2): every PIM-ID / group-ID bit
pins one parity of the offset.  StepStone's "increment-correct-and-check"
hardware walks this subspace in increasing address order; its two correction
rules (instant parity correction of adjacent same-ID bits, carry forwarding
across chains of distinct-ID bits) are exactly the trailing-bit corrections
of a reduced-echelon basis of the subspace:

* put the subspace's direction basis in integer-reduced echelon form (each
  vector has a unique leading "pivot" bit and zeros at other pivots);
* coset elements sorted by integer value correspond one-to-one to binary
  counter values over the pivot bits (monotone because each vector's
  sub-pivot correction bits sum to less than the pivot's weight);
* advancing to the next local block increments that counter; the hardware
  touches one ID-affecting pivot per carry, so the iteration count for step
  *k* is ``trailing_zeros(k) + 2`` (one simple-increment check plus one
  iteration per carried pivot) — bounded by the number of ID-affecting bits,
  as the paper states, and almost always hidden in the pipeline.

The **naive** generator instead bumps the address one cache block at a time
and re-checks, so its iteration count per step is the actual block gap —
about ``n_active_pims`` on average (§V-C's 1/n intuition) and far larger at
group-row boundaries.

`ExactStepStoneAGEN` is the reference implementation; the test suite checks
its trace byte-for-byte against a brute-force oracle over the mapping (the
paper's own validation methodology, §IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mapping.analysis import Constraint, FootprintAnalysis

__all__ = [
    "AffineSubspace",
    "ExactStepStoneAGEN",
    "agen_supported",
    "stepstone_iteration_counts",
    "naive_iterations",
    "stepstone_iterations",
]

_U64 = np.uint64


@dataclass
class AffineSubspace:
    """Solution set of GF(2) parity constraints over block indices.

    ``origin`` is the minimal element; ``basis`` is in integer-reduced
    echelon form sorted by ascending pivot, so element *k* (in increasing
    integer order) is ``origin XOR combine(bits of k)``.
    """

    origin: int
    basis: Tuple[int, ...]  # ascending pivots
    n_bits: int

    @property
    def size(self) -> int:
        return 1 << len(self.basis)

    def element(self, k: int) -> int:
        if not 0 <= k < self.size:
            raise IndexError(f"element {k} out of range (size {self.size})")
        x = self.origin
        i = 0
        while k:
            if k & 1:
                x ^= self.basis[i]
            k >>= 1
            i += 1
        return x

    def elements(self, start: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Vectorized enumeration of elements [start, start+count)."""
        if count is None:
            count = self.size - start
        ks = np.arange(start, start + count, dtype=_U64)
        out = np.full(len(ks), _U64(self.origin), dtype=_U64)
        for i, v in enumerate(self.basis):
            out ^= np.where((ks >> _U64(i)) & _U64(1) == 1, _U64(v), _U64(0))
        return out

    def index_of(self, x: int) -> int:
        """Inverse of :meth:`element` (x must be a member)."""
        k = 0
        delta = x ^ self.origin
        for i in reversed(range(len(self.basis))):
            pivot = self.basis[i].bit_length() - 1
            if (delta >> pivot) & 1:
                k |= 1 << i
                delta ^= self.basis[i]
        if delta:
            raise ValueError(f"{x:#x} is not in the subspace")
        return k


def solve_constraints(
    constraints: Sequence[Constraint], n_bits: int
) -> Optional[AffineSubspace]:
    """Solve parity constraints over *n_bits* variables.

    Returns ``None`` when the system is infeasible (the (PIM, group) pair
    owns no blocks).  Masks/targets are over block-index bits.
    """
    # Gaussian elimination; rows are (mask, target) with distinct lowest-bit
    # pivots.  Reduce each incoming row to a fixpoint because clearing one
    # pivot can set another that an earlier pass already skipped.
    rows: List[Tuple[int, int]] = []
    for c in constraints:
        m, t = c.mask, c.target
        changed = True
        while changed and m:
            changed = False
            for rm, rt in rows:
                pivot = rm & -rm
                if m & pivot:
                    m ^= rm
                    t ^= rt
                    changed = True
        if m == 0:
            if t == 1:
                return None  # contradictory
            continue
        rows.append((m, t))
    # Back-substitute to reduced form (each pivot appears in one row).
    rows.sort(key=lambda r: r[0] & -r[0])
    for i in range(len(rows)):
        pm = rows[i][0] & -rows[i][0]
        for j in range(len(rows)):
            if j != i and rows[j][0] & pm:
                rows[j] = (rows[j][0] ^ rows[i][0], rows[j][1] ^ rows[i][1])
    pivot_bits = {(r[0] & -r[0]).bit_length() - 1: r for r in rows}
    free_bits = [b for b in range(n_bits) if b not in pivot_bits]
    # Particular solution: free bits zero; pivot bit = target parity of the
    # row's remaining (free) support, which is zero here, so just target.
    x0 = 0
    for b, (m, t) in pivot_bits.items():
        if t:
            x0 |= 1 << b
    # Null-space basis: one vector per free bit.
    basis: List[int] = []
    for f in free_bits:
        v = 1 << f
        for b, (m, t) in pivot_bits.items():
            if (m >> f) & 1:
                v |= 1 << b
        basis.append(v)
    # Integer-reduced echelon form: unique leading bits, cleared elsewhere.
    echelon: List[int] = []
    for v in sorted(basis, reverse=True):
        for e in echelon:
            if v ^ e < v:
                v ^= e
        if v:
            echelon.append(v)
            echelon.sort(reverse=True)
    # Clear each vector's pivot from every other vector.
    for i in range(len(echelon)):
        p = 1 << (echelon[i].bit_length() - 1)
        for j in range(len(echelon)):
            if j != i and echelon[j] & p:
                echelon[j] ^= echelon[i]
    echelon.sort(key=lambda v: v.bit_length())
    # Canonical minimal origin: clear every pivot of x0.
    for v in reversed(echelon):
        p = 1 << (v.bit_length() - 1)
        if x0 & p:
            x0 ^= v
    return AffineSubspace(origin=x0, basis=tuple(echelon), n_bits=n_bits)


class ExactStepStoneAGEN:
    """Reference AGEN for one (PIM, group): exact trace + iteration counts.

    Produces block *addresses* (not offsets) in increasing order, restricted
    to the matrix footprint, together with the per-step iteration count of
    the increment-correct-and-check hardware.
    """

    def __init__(self, analysis: FootprintAnalysis, pim: int, group: int) -> None:
        self.analysis = analysis
        self.pim = pim
        self.group = group
        g = analysis.mapping.geometry
        self.block_bytes = g.block_bytes
        n_bits = (analysis.footprint_bytes // g.block_bytes).bit_length() - 1
        cons = analysis.constraints_for(pim, group)
        shifted = [
            Constraint(c.mask >> g.block_bits, c.target) for c in cons if c.mask or c.target
        ]
        self.subspace = solve_constraints(shifted, n_bits)

    @property
    def n_blocks(self) -> int:
        return 0 if self.subspace is None else self.subspace.size

    def trace(self) -> np.ndarray:
        """All local block addresses in increasing order."""
        if self.subspace is None:
            return np.empty(0, dtype=_U64)
        offs = self.subspace.elements()
        offs = np.sort(offs)
        return _U64(self.analysis.base) + offs.astype(_U64) * _U64(self.block_bytes)

    def trace_with_iterations(self) -> Tuple[np.ndarray, np.ndarray]:
        """(addresses, per-step iteration counts); counts[0] is the first fill."""
        addrs = self.trace()
        iters = stepstone_iteration_counts(len(addrs))
        return addrs, iters


def agen_supported(analysis: FootprintAnalysis, pim: int, group: int) -> bool:
    """Whether (pim, group) owns blocks (i.e. constraints are feasible)."""
    return ExactStepStoneAGEN(analysis, pim, group).n_blocks > 0


def stepstone_iteration_counts(n_steps: int) -> np.ndarray:
    """Iteration counts of the StepStone AGEN for *n_steps* sequential steps.

    Step *k* (1-based) increments the pivot counter from k-1 to k, touching
    ``trailing_zeros(k)`` carried pivots plus the incremented one, after one
    simple-increment check: ``tz(k) + 2`` iterations.  Step 0 (initial fill)
    costs the pipeline depth and is accounted separately by the executor.
    """
    if n_steps <= 0:
        return np.empty(0, dtype=np.int64)
    k = np.arange(n_steps, dtype=np.uint64)
    k[0] = 1  # placeholder; step 0 handled by pipeline fill
    tz = np.zeros(n_steps, dtype=np.int64)
    kk = k.copy()
    # trailing_zeros via progressive halving (k <= 2**63).
    mask = (kk & np.uint64(1)) == 0
    while mask.any():
        tz[mask] += 1
        kk = np.where(mask, kk >> np.uint64(1), kk)
        mask = mask & ((kk & np.uint64(1)) == 0)
    out = tz + 2
    out[0] = 2
    return out


def stepstone_iterations(addrs: np.ndarray) -> np.ndarray:
    """Per-access AGEN iteration model for an increasing address trace."""
    return stepstone_iteration_counts(len(addrs))


def naive_iterations(addrs: np.ndarray, block_bytes: int = 64) -> np.ndarray:
    """Naive generator iteration counts: one +1-block probe per gap block.

    ``addrs`` must be increasing block addresses; element 0 gets 1 (initial).
    """
    addrs = np.asarray(addrs, dtype=_U64)
    if len(addrs) == 0:
        return np.empty(0, dtype=np.int64)
    gaps = np.empty(len(addrs), dtype=np.int64)
    gaps[0] = 1
    if len(addrs) > 1:
        d = np.diff(addrs.astype(np.int64))
        if (d <= 0).any():
            raise ValueError("trace must be strictly increasing")
        gaps[1:] = d // block_bytes
    return gaps
