"""Preset XOR address mappings (Table II, mappings 0-4).

The paper uses DRAMA-reverse-engineered mappings: Skylake as the baseline
(ID 4) and Exynos-/Haswell-/IvyBridge-/SandyBridge-like variants (IDs 0-3)
modified with the PAE randomization method of Liu et al. [26].  The exact
published bit functions cover different DIMM populations than our Table II
geometry, so we re-derive structurally-equivalent functions that preserve
every property the paper's evaluation depends on:

* **Skylake (ID 4, baseline)** — matches §III-B exactly for the Fig. 4
  example: ``BG0 = a7 ^ a14`` and the channel bit is affected by
  ``a8, a9, a12, a13`` (plus row bits ``a19, a20`` for larger footprints).
  Consecutive cache-block *pairs* map to the same PIM (lowest ID-affecting
  bit is a7), as §V-C observes.
* **ID 0 (Exynos-like)** — ID-affecting bits are concentrated low, so a
  128 x 8192 matrix yields only 4 block groups (lowest localization overhead
  in Fig. 11, "matrix columns remain contiguous within each PIM").
* **IDs 1, 2 (Haswell-/IvyBridge-like)** — fine-grained hashing with many
  row bits: 16 block groups for 128 x 8192 (2x mappings 3/4, 4x mapping 0),
  reproducing the sharing ratios quoted in §V-E.
* **IDs 2, 3** additionally interleave bank groups at coarse granularity
  (lowest BG-affecting bit is a14), so channel-level PIM streaming pays
  tCCD_L on back-to-back accesses — the §V-E StepStone-CH anomaly.

`pae_randomized` generates additional randomized-but-invertible variants in
the spirit of PAE for sensitivity studies beyond the paper's five mappings.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.utils.bits import mask_of_bits
from repro.mapping.xor_mapping import DRAMGeometry, XORAddressMapping

__all__ = [
    "default_geometry",
    "make_skylake",
    "make_exynos_like",
    "make_haswell_like",
    "make_ivybridge_like",
    "make_sandybridge_like",
    "make_toy_mapping",
    "pae_randomized",
    "ADDRESS_MAPPINGS",
    "mapping_by_id",
]


def default_geometry() -> DRAMGeometry:
    """Table II geometry: 2 ch x 2 ranks x 4 BGs x 4 banks, 8 KiB rows."""
    return DRAMGeometry()


def _m(*bits: int) -> int:
    return mask_of_bits(bits)


def make_skylake(geometry: DRAMGeometry | None = None) -> XORAddressMapping:
    """Baseline Skylake-like mapping (Table II ID 4)."""
    g = geometry or default_geometry()
    masks = {
        "column": [_m(6), _m(7), _m(8), _m(9), _m(10), _m(11), _m(12)],
        "channel": [_m(8, 9, 12, 13, 19, 20)],
        "bankgroup": [_m(7, 14), _m(15, 19)],
        "bank": [_m(16, 20), _m(17, 21)],
        "rank": [_m(18, 22)],
        "row": [_m(19 + i) for i in range(15)],
    }
    return XORAddressMapping(g, masks, name="skylake", mapping_id=4)


def make_exynos_like(geometry: DRAMGeometry | None = None) -> XORAddressMapping:
    """Mapping ID 0: shallow XORs, ID-affecting bits concentrated low."""
    g = geometry or default_geometry()
    masks = {
        "column": [_m(6), _m(7), _m(8), _m(9), _m(10), _m(11), _m(12)],
        "channel": [_m(13, 7)],
        "bankgroup": [_m(14, 8), _m(15, 9)],
        "bank": [_m(16, 10), _m(17, 11)],
        "rank": [_m(18, 12)],
        "row": [_m(19 + i) for i in range(15)],
    }
    return XORAddressMapping(g, masks, name="exynos-like", mapping_id=0)


def make_haswell_like(geometry: DRAMGeometry | None = None) -> XORAddressMapping:
    """Mapping ID 1: deep hashing — every PIM ID bit mixes column + row bits."""
    g = geometry or default_geometry()
    masks = {
        "column": [_m(6), _m(7), _m(8), _m(9), _m(10), _m(11), _m(12)],
        "channel": [_m(13, 8, 19)],
        "bankgroup": [_m(14, 7, 20), _m(15, 9, 21)],
        "bank": [_m(16, 11), _m(17, 12)],
        "rank": [_m(18, 10, 22)],
        "row": [_m(19 + i) for i in range(15)],
    }
    return XORAddressMapping(g, masks, name="haswell-like", mapping_id=1)


def make_ivybridge_like(geometry: DRAMGeometry | None = None) -> XORAddressMapping:
    """Mapping ID 2: deep hashing + coarse bank-group interleaving.

    The lowest BG-affecting bit is a14, so 256 consecutive cache blocks fall
    in the same bank group — a channel-level PIM therefore streams at the
    tCCD_L cadence (the §V-E StepStone-CH penalty).
    """
    g = geometry or default_geometry()
    masks = {
        "column": [_m(6), _m(7), _m(8), _m(9), _m(10), _m(11), _m(12)],
        "channel": [_m(13, 8, 9, 19)],
        "bankgroup": [_m(14, 20), _m(15, 21)],
        "bank": [_m(16, 10), _m(17, 11)],
        "rank": [_m(18, 12, 22)],
        "row": [_m(19 + i) for i in range(15)],
    }
    return XORAddressMapping(g, masks, name="ivybridge-like", mapping_id=2)


def make_sandybridge_like(geometry: DRAMGeometry | None = None) -> XORAddressMapping:
    """Mapping ID 3: moderate hashing + coarse bank-group interleaving."""
    g = geometry or default_geometry()
    masks = {
        "column": [_m(6), _m(7), _m(8), _m(9), _m(10), _m(11), _m(12)],
        "channel": [_m(13, 7)],
        "bankgroup": [_m(14, 20), _m(15, 19)],
        "bank": [_m(16, 10), _m(17, 11)],
        "rank": [_m(18, 22)],
        "row": [_m(19 + i) for i in range(15)],
    }
    return XORAddressMapping(g, masks, name="sandybridge-like", mapping_id=3)


def make_toy_mapping() -> XORAddressMapping:
    """The toy 4-PIM (rank-level) mapping in the spirit of paper Fig. 2.

    Tiny geometry (512 addresses, element-granular blocks are 4 B here
    modelled as ``block_bits = 2``) used for unit tests and for the
    address-mapping explorer example, which renders Fig. 2b-style PIM-ID
    heat maps.
    """
    g = DRAMGeometry(
        channel_bits=1,
        rank_bits=1,
        bankgroup_bits=1,
        bank_bits=1,
        row_bits=3,
        column_bits=2,
        block_bits=2,
    )
    masks = {
        "column": [_m(2), _m(3)],
        "channel": [_m(4, 8)],
        "rank": [_m(5, 9)],
        "bankgroup": [_m(6, 2)],
        "bank": [_m(7, 3)],
        "row": [_m(8), _m(9), _m(10)],
    }
    return XORAddressMapping(g, masks, name="toy", mapping_id=None)


def pae_randomized(
    base: XORAddressMapping, seed: int, extra_terms: int = 2
) -> XORAddressMapping:
    """Derive a randomized variant of *base* in the spirit of PAE [26].

    XORs up to *extra_terms* randomly-chosen row bits into each channel /
    rank / bank-group function.  The home bits are untouched, so the result
    is always invertible; the randomization only changes *which* address bits
    perturb each PIM ID bit — exactly the degree of freedom PAE explores.
    """
    rng = np.random.default_rng(seed)
    g = base.geometry
    # Row bits are pass-through in all presets; find their address positions.
    row_positions = [m.bit_length() - 1 for m in base.field_masks["row"]]
    masks: Dict[str, list] = {f: list(ms) for f, ms in base.field_masks.items()}
    for fname in ("channel", "rank", "bankgroup"):
        new = []
        for m in masks[fname]:
            k = int(rng.integers(0, extra_terms + 1))
            for b in rng.choice(row_positions, size=k, replace=False):
                m ^= 1 << int(b)
            new.append(m)
        masks[fname] = new
    return XORAddressMapping(
        g, masks, name=f"{base.name}-pae{seed}", mapping_id=None
    )


#: Table II mapping registry: ID -> factory.
ADDRESS_MAPPINGS: Dict[int, Callable[[], XORAddressMapping]] = {
    0: make_exynos_like,
    1: make_haswell_like,
    2: make_ivybridge_like,
    3: make_sandybridge_like,
    4: make_skylake,
}


def mapping_by_id(mapping_id: int, geometry: DRAMGeometry | None = None) -> XORAddressMapping:
    """Instantiate a Table II mapping by its paper ID (0-4)."""
    try:
        factory = ADDRESS_MAPPINGS[mapping_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown mapping id {mapping_id}; valid ids: {sorted(ADDRESS_MAPPINGS)}"
        ) from exc
    return factory(geometry) if geometry is not None else factory()
