"""Matrix-footprint analysis: active PIMs and StepStone block groups (§III-B).

A weight matrix A (M x K fp32, row-major, physically contiguous and aligned)
occupies a power-of-two footprint.  Address bits inside the footprint split
into **MCOL** bits (addresses within one matrix row) and **MROW** bits (which
matrix row).  For PIM-ID bit *i* with mask ``m_i``:

* ``m_i & MCOL`` determines how blocks *within* a row stripe across PIMs;
* ``m_i & MROW`` determines how that striping pattern *changes across rows*.

Rows whose MROW parities agree for every ID bit see the *same* column->PIM
striping — they form a **block group**.  Within a group, a PIM reuses the
same B sub-matrix across all of the group's rows (B locality) and walks each
row accumulating into one C row (C locality).  This module computes the
groups, the per-(PIM, group) local column sets, and the parity constraints
that StepStone's address generator enforces in hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.utils.bits import bits_of_mask, parity, parity_u64 as _parity_u64
from repro.mapping.xor_mapping import PimLevel, XORAddressMapping

__all__ = ["Constraint", "BlockGrouping", "FootprintAnalysis", "analyze_footprint"]

_U64 = np.uint64


@dataclass(frozen=True)
class Constraint:
    """One GF(2) parity constraint on a footprint offset: parity(off & mask) == target."""

    mask: int
    target: int

    def satisfied_by(self, off: int) -> bool:
        return parity(off & self.mask) == self.target


@dataclass(frozen=True)
class BlockGrouping:
    """Block-group structure of one footprint at one PIM level.

    Attributes
    ----------
    group_parity_masks:
        For each PIM-ID bit (LSB first), the mask restricted to MROW bits
        (0 if the ID bit is unaffected by the row index).
    raw_codes:
        The distinct raw group codes that actually occur, sorted; the group
        *index* used throughout the package is the position in this tuple.
    row_groups:
        ``row_groups[r]`` is the group index of matrix row *r*.
    """

    group_parity_masks: Tuple[int, ...]
    raw_codes: Tuple[int, ...]
    row_groups: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.raw_codes)

    def rows_of_group(self, group: int) -> np.ndarray:
        """Sorted matrix-row indices belonging to *group*."""
        return np.nonzero(self.row_groups == group)[0]


class FootprintAnalysis:
    """Analysis of one contiguous, aligned matrix footprint under a mapping.

    Parameters
    ----------
    mapping: the XOR address mapping.
    level: PIM integration level (CH / DV / BG).
    m_rows, k_cols: matrix dimensions (A is M x K, row-major fp32).
    base: physical base address; must be aligned to the footprint size.
    word_bytes: element size (4 for fp32).
    """

    def __init__(
        self,
        mapping: XORAddressMapping,
        level: PimLevel,
        m_rows: int,
        k_cols: int,
        base: int = 0,
        word_bytes: int = 4,
        pinned_id_bits: int = 0,
    ) -> None:
        g = mapping.geometry
        if m_rows <= 0 or k_cols <= 0:
            raise ValueError("matrix dimensions must be positive")
        if m_rows & (m_rows - 1) or k_cols & (k_cols - 1):
            raise ValueError(
                f"matrix dimensions must be powers of two (pad first), got {m_rows}x{k_cols}"
            )
        row_bytes = k_cols * word_bytes
        if row_bytes % g.block_bytes:
            raise ValueError(
                f"row size {row_bytes} B must be a multiple of the "
                f"{g.block_bytes} B cache block (pad K)"
            )
        footprint = m_rows * row_bytes
        if footprint > g.capacity_bytes:
            raise ValueError("matrix exceeds DRAM capacity")
        if base % footprint:
            raise ValueError(
                f"base {base:#x} must be aligned to the {footprint:#x}-byte footprint"
            )
        self.mapping = mapping
        self.level = level
        self.m_rows = m_rows
        self.k_cols = k_cols
        self.base = base
        self.word_bytes = word_bytes
        self.row_bytes = row_bytes
        self.footprint_bytes = footprint
        self.footprint_mask = footprint - 1
        self.mcol_mask = (row_bytes - 1) & ~(g.block_bytes - 1)
        self.mrow_mask = self.footprint_mask & ~(row_bytes - 1)
        self.blocks_per_row = row_bytes // g.block_bytes
        self.total_blocks = footprint // g.block_bytes
        # PIM subsetting (§III-E): the allocator can pin the lowest
        # `pinned_id_bits` PIM-ID bits (BG0 first, as in the paper's 32 KiB
        # allocation-granularity example), halving the active PIM count per
        # pinned bit.  Pinned bits no longer stripe the footprint, so they
        # drop out of both the ID space and the group structure.
        full_masks = mapping.pim_id_masks(level)
        if not 0 <= pinned_id_bits < len(full_masks):
            raise ValueError(
                f"pinned_id_bits must be in [0, {len(full_masks)}), got {pinned_id_bits}"
            )
        self.pinned_id_bits = pinned_id_bits
        self.id_masks: Tuple[int, ...] = full_masks[pinned_id_bits:]
        self.base_id = self._pim_id_scalar(base)
        self._grouping: BlockGrouping | None = None
        self._cols_cache: Dict[Tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # ID evaluation over the (possibly subsetted) ID space
    # ------------------------------------------------------------------ #

    def _pim_id_scalar(self, addr: int) -> int:
        v = 0
        for i, m in enumerate(self.id_masks):
            v |= parity(addr & m) << i
        return v

    def _pim_ids(self, addrs: np.ndarray) -> np.ndarray:
        addrs = np.asarray(addrs, dtype=_U64)
        out = np.zeros(addrs.shape, dtype=_U64)
        for i, m in enumerate(self.id_masks):
            out |= _parity_u64(addrs & _U64(m)) << _U64(i)
        return out

    # ------------------------------------------------------------------ #
    # PIM activity
    # ------------------------------------------------------------------ #

    @property
    def id_affecting_mask(self) -> int:
        """Footprint bits that affect any PIM-ID bit."""
        u = 0
        for m in self.id_masks:
            u |= m & self.footprint_mask
        return u

    @property
    def lowest_id_bit(self) -> int:
        """Lowest footprint bit affecting the PIM ID (-1 if none)."""
        u = self.id_affecting_mask
        return -1 if u == 0 else bits_of_mask(u)[0]

    def active_pim_ids(self) -> np.ndarray:
        """The set of PIM IDs the footprint actually touches.

        The reachable ID *offsets* form the GF(2) span of the per-footprint-bit
        ID perturbation vectors; the active set is ``base_id ^ span``.
        """
        vectors = []
        for b in bits_of_mask(self.id_affecting_mask):
            v = 0
            for i, m in enumerate(self.id_masks):
                if (m >> b) & 1:
                    v |= 1 << i
            vectors.append(v)
        basis: List[int] = []
        for v in vectors:
            cur = v
            for bvec in basis:
                cur = min(cur, cur ^ bvec)
            if cur:
                basis.append(cur)
        span = np.zeros(1, dtype=np.int64)
        for bvec in basis:
            span = np.concatenate([span, span ^ bvec])
        return np.sort(np.unique(span ^ self.base_id))

    @property
    def n_active_pims(self) -> int:
        return len(self.active_pim_ids())

    # ------------------------------------------------------------------ #
    # Block groups
    # ------------------------------------------------------------------ #

    @property
    def grouping(self) -> BlockGrouping:
        if self._grouping is None:
            self._grouping = self._compute_grouping()
        return self._grouping

    def _compute_grouping(self) -> BlockGrouping:
        gmasks = tuple(m & self.mrow_mask for m in self.id_masks)
        rows = np.arange(self.m_rows, dtype=_U64)
        row_addrs = rows * _U64(self.row_bytes)  # base is aligned: contributes 0
        codes = np.zeros(self.m_rows, dtype=_U64)
        for i, gm in enumerate(gmasks):
            if gm:
                codes |= _parity_u64(row_addrs & _U64(gm)) << _U64(i)
        raw = np.unique(codes)
        # Map raw code -> compact group index.
        row_groups = np.searchsorted(raw, codes).astype(np.int64)
        return BlockGrouping(
            group_parity_masks=gmasks,
            raw_codes=tuple(int(c) for c in raw),
            row_groups=row_groups,
        )

    @property
    def n_groups(self) -> int:
        return self.grouping.n_groups

    def rows_of_group(self, group: int) -> np.ndarray:
        return self.grouping.rows_of_group(group)

    # ------------------------------------------------------------------ #
    # Per-(PIM, group) locality
    # ------------------------------------------------------------------ #

    def cols_of(self, pim: int, group: int) -> np.ndarray:
        """Block-column offsets (0..blocks_per_row-1) local to *pim* in *group*.

        Identical for every row of the group — that is the group invariant.
        """
        key = (pim, group)
        cached = self._cols_cache.get(key)
        if cached is not None:
            return cached
        rows = self.rows_of_group(group)
        if len(rows) == 0:
            raise ValueError(f"group {group} is empty")
        r0 = int(rows[0])
        cols = np.arange(self.blocks_per_row, dtype=_U64)
        addrs = (
            _U64(self.base)
            + _U64(r0) * _U64(self.row_bytes)
            + cols * _U64(self.mapping.geometry.block_bytes)
        )
        ids = self._pim_ids(addrs)
        out = np.nonzero(ids == _U64(pim))[0].astype(np.int64)
        self._cols_cache[key] = out
        return out

    def blocks_of(self, pim: int, group: int, rows: np.ndarray | None = None) -> np.ndarray:
        """Block addresses of (pim, group) in execution order (row-major).

        Execution order walks each matrix row's local blocks left-to-right,
        then advances to the group's next row — the order that maximizes C
        reuse along rows and B reuse down columns (§III-B).
        """
        cols = self.cols_of(pim, group)
        if rows is None:
            rows = self.rows_of_group(group)
        rows = np.asarray(rows, dtype=_U64)
        if len(cols) == 0 or len(rows) == 0:
            return np.empty(0, dtype=_U64)
        bb = _U64(self.mapping.geometry.block_bytes)
        row_addrs = _U64(self.base) + rows * _U64(self.row_bytes)
        return (row_addrs[:, None] + cols.astype(_U64)[None, :] * bb).ravel()

    def blocks_per_pim(self) -> Dict[int, int]:
        """Total local block count per active PIM (sums to total_blocks)."""
        counts: Dict[int, int] = {}
        for pim in self.active_pim_ids():
            n = 0
            for grp in range(self.n_groups):
                n += len(self.cols_of(int(pim), grp)) * len(self.rows_of_group(grp))
            counts[int(pim)] = n
        return counts

    # ------------------------------------------------------------------ #
    # AGEN constraints
    # ------------------------------------------------------------------ #

    def constraints_for(self, pim: int, group: int) -> Tuple[Constraint, ...]:
        """Parity constraints a footprint offset must satisfy to belong to
        (pim, group) — what the StepStone AGEN checks per candidate address.

        For each PIM-ID bit *i* with footprint-restricted mask ``f_i``:

        * PIM match:   ``parity(off & f_i) == pim_i ^ base_id_i``
        * group match: ``parity(off & (f_i & MROW)) == raw_group_code_i``

        Constraints with zero masks are dropped (trivially satisfied if the
        target is 0; contradictory footprints are rejected).
        """
        raw_code = self.grouping.raw_codes[group]
        out: List[Constraint] = []
        for i, m in enumerate(self.id_masks):
            f = m & self.footprint_mask
            t_pim = ((pim >> i) & 1) ^ ((self.base_id >> i) & 1)
            g_bit = (raw_code >> i) & 1
            mrow_part = f & self.mrow_mask
            mcol_part = f & self.mcol_mask
            if mrow_part:
                out.append(Constraint(mrow_part, g_bit))
            elif g_bit:
                raise ValueError(
                    f"group code bit {i} set but ID bit has no MROW support"
                )
            if mcol_part:
                out.append(Constraint(mcol_part, t_pim ^ g_bit))
            elif t_pim ^ g_bit:
                # The column part cannot produce this parity: (pim, group)
                # owns no blocks.  Callers should skip such pairs.
                return (Constraint(0, 1),)
        return tuple(out)

    def owns_blocks(self, pim: int, group: int) -> bool:
        """True if (pim, group) owns at least one cache block."""
        cons = self.constraints_for(pim, group)
        return not any(c.mask == 0 and c.target == 1 for c in cons)


def analyze_footprint(
    mapping: XORAddressMapping,
    level: PimLevel,
    m_rows: int,
    k_cols: int,
    base: int = 0,
    word_bytes: int = 4,
    pinned_id_bits: int = 0,
) -> FootprintAnalysis:
    """Construct a :class:`FootprintAnalysis` (convenience wrapper)."""
    return FootprintAnalysis(
        mapping,
        level,
        m_rows,
        k_cols,
        base=base,
        word_bytes=word_bytes,
        pinned_id_bits=pinned_id_bits,
    )
