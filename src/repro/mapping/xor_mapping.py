"""Linear (XOR-based) physical-address -> DRAM-coordinate mappings.

A mapping takes a physical byte address and produces the tuple
``(channel, rank, bankgroup, bank, row, column)``.  Each output *bit* is the
parity of ``address & mask`` for a per-bit mask, which makes the whole mapping
a linear transform over GF(2) — exactly the class of mappings used by Intel
and Samsung memory controllers (reverse-engineered by DRAMA [36]) and assumed
by the paper (§II, §III).

The **PIM ID** of an address at a given PIM level is the concatenation of the
coordinate fields that select a PIM unit:

- ``PimLevel.CHANNEL``  : (channel)                    — StepStone-CH
- ``PimLevel.DEVICE``   : (rank, channel)              — StepStone-DV (rank/buffer-chip PIM)
- ``PimLevel.BANKGROUP``: (bankgroup, rank, channel)   — StepStone-BG

Bit 0 of the PIM ID is the lowest bank-group bit (paper Fig. 4a: BG0 is PIM ID
bit 0 and the channel bit is the highest PIM ID bit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.bits import bits_of_mask, parity, parity_u64

__all__ = ["DRAMGeometry", "PimLevel", "XORAddressMapping", "FIELD_ORDER"]

_U64 = np.uint64

#: Coordinate fields from PIM-selection LSB to address MSB side.
FIELD_ORDER: Tuple[str, ...] = ("channel", "rank", "bankgroup", "bank", "row", "column")


class PimLevel(str, enum.Enum):
    """DRAM hierarchy level at which PIM units are integrated (paper Fig. 3a)."""

    CHANNEL = "channel"
    DEVICE = "device"
    BANKGROUP = "bankgroup"

    @property
    def short(self) -> str:
        return {"channel": "CH", "device": "DV", "bankgroup": "BG"}[self.value]


@dataclass(frozen=True)
class DRAMGeometry:
    """Bit widths of each DRAM coordinate field.

    The default geometry matches Table II: DDR4-2400R, x8 devices, 2 channels
    x 2 ranks x 4 bank groups x 4 banks, 32768 rows, 8 KiB row per rank
    (128 cache blocks of 64 B).
    """

    channel_bits: int = 1
    rank_bits: int = 1
    bankgroup_bits: int = 2
    bank_bits: int = 2
    row_bits: int = 15
    column_bits: int = 7
    block_bits: int = 6  # 64 B cache blocks

    @property
    def field_widths(self) -> Dict[str, int]:
        return {
            "channel": self.channel_bits,
            "rank": self.rank_bits,
            "bankgroup": self.bankgroup_bits,
            "bank": self.bank_bits,
            "row": self.row_bits,
            "column": self.column_bits,
        }

    @property
    def address_bits(self) -> int:
        """Total physical-address bits covered by the mapping."""
        return self.block_bits + sum(self.field_widths.values())

    @property
    def capacity_bytes(self) -> int:
        return 1 << self.address_bits

    @property
    def block_bytes(self) -> int:
        return 1 << self.block_bits

    @property
    def channels(self) -> int:
        return 1 << self.channel_bits

    @property
    def ranks_per_channel(self) -> int:
        return 1 << self.rank_bits

    @property
    def bankgroups_per_rank(self) -> int:
        return 1 << self.bankgroup_bits

    @property
    def banks_per_bankgroup(self) -> int:
        return 1 << self.bank_bits

    @property
    def rows_per_bank(self) -> int:
        return 1 << self.row_bits

    @property
    def blocks_per_row(self) -> int:
        return 1 << self.column_bits

    @property
    def row_bytes(self) -> int:
        """Bytes per DRAM row across the rank (row-buffer reach of one bank)."""
        return self.blocks_per_row * self.block_bytes

    def num_pims(self, level: PimLevel) -> int:
        """PIM-unit count at *level* for this geometry (16 BG / 4 DV / 2 CH)."""
        if level is PimLevel.CHANNEL:
            return self.channels
        if level is PimLevel.DEVICE:
            return self.channels * self.ranks_per_channel
        return self.channels * self.ranks_per_channel * self.bankgroups_per_rank


class XORAddressMapping:
    """A concrete XOR-based address mapping.

    Parameters
    ----------
    geometry:
        The DRAM geometry (field bit widths).
    field_masks:
        For each field name, a list of integer masks — one per output bit,
        LSB first.  Output bit *i* of the field is ``parity(addr & mask[i])``.
    name:
        Human-readable identifier (e.g. ``"skylake"``).
    mapping_id:
        The paper's Table II mapping ID (0-4), or ``None`` for custom maps.
    """

    def __init__(
        self,
        geometry: DRAMGeometry,
        field_masks: Dict[str, Sequence[int]],
        name: str = "custom",
        mapping_id: int | None = None,
    ) -> None:
        self.geometry = geometry
        self.name = name
        self.mapping_id = mapping_id
        self.field_masks: Dict[str, Tuple[int, ...]] = {}
        widths = geometry.field_widths
        for fname in FIELD_ORDER:
            masks = tuple(int(m) for m in field_masks.get(fname, ()))
            if len(masks) != widths[fname]:
                raise ValueError(
                    f"field {fname!r}: expected {widths[fname]} masks, got {len(masks)}"
                )
            addr_mask = (1 << geometry.address_bits) - 1
            for m in masks:
                if m == 0:
                    raise ValueError(f"field {fname!r} has a zero mask")
                if m & ~addr_mask:
                    raise ValueError(
                        f"field {fname!r} mask {m:#x} exceeds {geometry.address_bits} address bits"
                    )
                if m & (geometry.block_bytes - 1):
                    raise ValueError(
                        f"field {fname!r} mask {m:#x} uses block-offset bits"
                    )
            self.field_masks[fname] = masks
        self._check_invertible()
        # Pre-pack masks for vectorized evaluation.
        self._packed: Dict[str, np.ndarray] = {
            f: np.asarray(ms, dtype=_U64) for f, ms in self.field_masks.items()
        }

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mid = "" if self.mapping_id is None else f", id={self.mapping_id}"
        return f"XORAddressMapping({self.name!r}{mid})"

    def all_masks(self) -> List[Tuple[str, int, int]]:
        """All (field, bit index, mask) triples, LSB first per field."""
        out = []
        for fname in FIELD_ORDER:
            for i, m in enumerate(self.field_masks[fname]):
                out.append((fname, i, m))
        return out

    def _check_invertible(self) -> None:
        """Verify the GF(2) transform is a bijection over the address space.

        Gaussian elimination over the mask rows (plus identity rows for the
        block-offset bits): the mapping is invertible iff the matrix has full
        rank ``geometry.address_bits``.
        """
        rows = [1 << b for b in range(self.geometry.block_bits)]
        for fname in FIELD_ORDER:
            rows.extend(self.field_masks[fname])
        n = self.geometry.address_bits
        if len(rows) != n:
            raise ValueError(f"mapping defines {len(rows)} output bits, expected {n}")
        basis: List[int] = []
        for r in rows:
            cur = r
            for b in basis:
                cur = min(cur, cur ^ b)
            if cur == 0:
                raise ValueError(
                    f"address mapping {self.name!r} is not invertible "
                    "(output bits are linearly dependent)"
                )
            basis.append(cur)

    # ------------------------------------------------------------------ #
    # Evaluation (scalar and vectorized)
    # ------------------------------------------------------------------ #

    def field_value(self, addr: int, fname: str) -> int:
        """Scalar field evaluation, e.g. ``field_value(a, 'bankgroup')``."""
        v = 0
        for i, m in enumerate(self.field_masks[fname]):
            v |= parity(addr & m) << i
        return v

    def coords(self, addr: int) -> Dict[str, int]:
        """Full coordinate tuple of one address as a dict."""
        return {f: self.field_value(addr, f) for f in FIELD_ORDER}

    def field_values(self, addrs: np.ndarray, fname: str) -> np.ndarray:
        """Vectorized field evaluation over a ``uint64`` address array."""
        addrs = np.asarray(addrs, dtype=_U64)
        out = np.zeros(addrs.shape, dtype=_U64)
        for i, m in enumerate(self._packed[fname]):
            out |= parity_u64(addrs & m) << _U64(i)
        return out

    def coords_arrays(self, addrs: np.ndarray) -> Dict[str, np.ndarray]:
        """Vectorized full-coordinate evaluation."""
        return {f: self.field_values(addrs, f) for f in FIELD_ORDER}

    # ------------------------------------------------------------------ #
    # PIM IDs
    # ------------------------------------------------------------------ #

    def pim_id_masks(self, level: PimLevel) -> Tuple[int, ...]:
        """Masks of the PIM ID bits at *level*, LSB first.

        Bit order follows the paper (Fig. 4a): bank-group bits first (BG0 is
        PIM ID bit 0), then rank, then channel as the most-significant bit.
        """
        masks: List[int] = []
        if level is PimLevel.BANKGROUP:
            masks.extend(self.field_masks["bankgroup"])
        if level in (PimLevel.BANKGROUP, PimLevel.DEVICE):
            masks.extend(self.field_masks["rank"])
        masks.extend(self.field_masks["channel"])
        return tuple(masks)

    def num_pims(self, level: PimLevel) -> int:
        return self.geometry.num_pims(level)

    def pim_id(self, addr: int, level: PimLevel) -> int:
        """Scalar PIM ID of one address."""
        v = 0
        for i, m in enumerate(self.pim_id_masks(level)):
            v |= parity(addr & m) << i
        return v

    def pim_ids(self, addrs: np.ndarray, level: PimLevel) -> np.ndarray:
        """Vectorized PIM IDs of a ``uint64`` address array."""
        addrs = np.asarray(addrs, dtype=_U64)
        out = np.zeros(addrs.shape, dtype=_U64)
        for i, m in enumerate(self.pim_id_masks(level)):
            out |= parity_u64(addrs & _U64(m)) << _U64(i)
        return out

    # ------------------------------------------------------------------ #
    # Derived helpers used by the planner / AGEN
    # ------------------------------------------------------------------ #

    def id_affecting_mask(self, level: PimLevel, footprint_mask: int) -> int:
        """Union of address bits within *footprint_mask* that affect the PIM ID."""
        u = 0
        for m in self.pim_id_masks(level):
            u |= m & footprint_mask
        return u

    def lowest_id_bit(self, level: PimLevel, footprint_mask: int | None = None) -> int:
        """Lowest address bit that affects the PIM ID (within the footprint)."""
        fp = footprint_mask if footprint_mask is not None else (1 << self.geometry.address_bits) - 1
        u = self.id_affecting_mask(level, fp)
        if u == 0:
            return -1
        return bits_of_mask(u)[0]

    def describe(self) -> str:
        """Multi-line description of every output-bit XOR function."""
        lines = [f"mapping {self.name!r} (id={self.mapping_id})"]
        for fname in FIELD_ORDER:
            for i, m in enumerate(self.field_masks[fname]):
                terms = " ^ ".join(f"a{b}" for b in bits_of_mask(m))
                lines.append(f"  {fname}[{i}] = {terms}")
        return "\n".join(lines)
