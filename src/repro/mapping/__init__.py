"""XOR-based DRAM address mapping: representation, presets, and analysis.

The CPU distributes consecutive cache blocks across channels/ranks/bank-groups
with XOR hash functions (DRAMA-style).  Every output coordinate bit is the
parity of the physical address ANDed with a mask, i.e. the mapping is linear
over GF(2).  StepStone's block-grouping and address generation both derive
directly from these masks.
"""

from repro.mapping.xor_mapping import DRAMGeometry, PimLevel, XORAddressMapping
from repro.mapping.presets import (
    ADDRESS_MAPPINGS,
    mapping_by_id,
    make_exynos_like,
    make_haswell_like,
    make_ivybridge_like,
    make_sandybridge_like,
    make_skylake,
    make_toy_mapping,
    pae_randomized,
)
from repro.mapping.analysis import BlockGrouping, FootprintAnalysis, analyze_footprint

__all__ = [
    "DRAMGeometry",
    "PimLevel",
    "XORAddressMapping",
    "ADDRESS_MAPPINGS",
    "mapping_by_id",
    "make_skylake",
    "make_exynos_like",
    "make_haswell_like",
    "make_ivybridge_like",
    "make_sandybridge_like",
    "make_toy_mapping",
    "pae_randomized",
    "BlockGrouping",
    "FootprintAnalysis",
    "analyze_footprint",
]
