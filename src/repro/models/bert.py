"""BERT-large text classification (Table II): 24 blocks, MLP 1024-4096-1024,
16 heads, sequence length 8, batch 4.

After tensor reshaping the FC activation dimension is N = batch x seq = 32
for every FC layer (§V-B), which is why BERT leans on StepStone-DV.
"""

from __future__ import annotations

from repro.core.gemm import GemmShape
from repro.models.layers import CpuOp, GemmInvocation, ModelSpec, attention_cpu_ops

__all__ = ["make_bert"]


def make_bert(batch: int = 4, seq_len: int = 8, blocks: int = 24) -> ModelSpec:
    d_model = 1024
    d_ff = 4096
    heads = 16
    n = batch * seq_len  # activation columns after reshape
    gemms = (
        # Q, K, V and attention-output projections: 1024 x 1024.
        GemmInvocation("proj-qkv", GemmShape(d_model, d_model, n), count=3 * blocks),
        GemmInvocation("proj-out", GemmShape(d_model, d_model, n), count=blocks),
        # MLP: 1024 -> 4096 -> 1024.
        GemmInvocation("mlp-up", GemmShape(d_ff, d_model, n), count=blocks),
        GemmInvocation("mlp-down", GemmShape(d_model, d_ff, n), count=blocks),
        # WNLI classification head (2 classes) — tiny, lands on the CPU.
        GemmInvocation("classifier", GemmShape(2, d_model, batch), count=1),
    )
    cpu_ops = tuple(
        attention_cpu_ops("bert", blocks, batch, heads, seq_len, d_model // heads, d_model)
    ) + (
        CpuOp("bert/embed+pool", 0.0, 4.0 * batch * seq_len * d_model * 4, count=1),
    )
    return ModelSpec(name="BERT", gemms=gemms, cpu_ops=cpu_ops, batch_size=batch)
