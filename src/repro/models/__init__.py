"""End-to-end DL inference models (Table II) and the inference engine."""

from repro.models.layers import CpuOp, GemmInvocation, ModelSpec, pow2_partition
from repro.models.dlrm import make_dlrm_rm3
from repro.models.bert import make_bert
from repro.models.gpt2 import make_gpt2
from repro.models.xlm import make_xlm
from repro.models.inference import (
    BACKENDS,
    InferenceEngine,
    InferenceResult,
    all_models,
)

__all__ = [
    "CpuOp",
    "GemmInvocation",
    "ModelSpec",
    "pow2_partition",
    "make_dlrm_rm3",
    "make_bert",
    "make_gpt2",
    "make_xlm",
    "BACKENDS",
    "InferenceEngine",
    "InferenceResult",
    "all_models",
]
