"""GPT2-XL text generation (Table II): 48 blocks, MLP 1600-6400-1600,
projection 1600 x 1600, sequence length 8, batch 4.

Autoregressive generation processes one new token per step with a KV cache,
so each of the 8 generated tokens runs every FC layer at N = batch — the
small-N regime where StepStone-BG shines (§V-B: "GPT2 shows a similar trend
[to DLRM] but the gaps are greater due to a larger weight matrix").
The non-power-of-two 1600/6400 dimensions exercise the §III fn. 2
partitioning path.

``prompt_tokens`` makes the context the generation starts from explicit:
the per-step FC GEMMs are unchanged (the KV cache means one fresh token per
step regardless of prompt length) but attention attends the full cached
context, so CPU_Other grows with the prompt.  The default of 0 reproduces
the original Table II aggregate exactly.
"""

from __future__ import annotations

from repro.models.layers import (
    CpuOp,
    ModelSpec,
    attention_cpu_ops,
    decoder_step_gemms,
)

__all__ = ["make_gpt2"]


def make_gpt2(
    batch: int = 4,
    gen_tokens: int = 8,
    blocks: int = 48,
    prompt_tokens: int = 0,
) -> ModelSpec:
    d_model = 1600
    d_ff = 6400
    heads = 25
    n = batch  # one token per step, KV-cached
    gemms = tuple(decoder_step_gemms(d_model, d_ff, n, blocks, repeat=gen_tokens))
    cpu_ops = tuple(
        op
        for step in range(gen_tokens)
        for op in attention_cpu_ops(
            f"gpt2/t{step}",
            blocks,
            batch,
            heads,
            prompt_tokens + step + 1,
            d_model // heads,
            d_model,
        )
    ) + (
        CpuOp("gpt2/sampling", 2.0 * batch * 50257, 4.0 * batch * 50257 * 2, count=gen_tokens),
    )
    return ModelSpec(name="GPT2", gemms=gemms, cpu_ops=cpu_ops, batch_size=batch)
