"""GPT2-XL text generation (Table II): 48 blocks, MLP 1600-6400-1600,
projection 1600 x 1600, sequence length 8, batch 4.

Autoregressive generation processes one new token per step with a KV cache,
so each of the 8 generated tokens runs every FC layer at N = batch — the
small-N regime where StepStone-BG shines (§V-B: "GPT2 shows a similar trend
[to DLRM] but the gaps are greater due to a larger weight matrix").
The non-power-of-two 1600/6400 dimensions exercise the §III fn. 2
partitioning path.
"""

from __future__ import annotations

from repro.core.gemm import GemmShape
from repro.models.layers import CpuOp, GemmInvocation, ModelSpec, attention_cpu_ops

__all__ = ["make_gpt2"]


def make_gpt2(batch: int = 4, gen_tokens: int = 8, blocks: int = 48) -> ModelSpec:
    d_model = 1600
    d_ff = 6400
    heads = 25
    n = batch  # one token per step, KV-cached
    per_step = blocks
    total = per_step * gen_tokens
    gemms = (
        GemmInvocation("proj-qkv", GemmShape(d_model, d_model, n), count=3 * total),
        GemmInvocation("proj-out", GemmShape(d_model, d_model, n), count=total),
        GemmInvocation("mlp-up", GemmShape(d_ff, d_model, n), count=total),
        GemmInvocation("mlp-down", GemmShape(d_model, d_ff, n), count=total),
    )
    cpu_ops = tuple(
        op
        for step in range(gen_tokens)
        for op in attention_cpu_ops(
            f"gpt2/t{step}", blocks, batch, heads, step + 1, d_model // heads, d_model
        )
    ) + (
        CpuOp("gpt2/sampling", 2.0 * batch * 50257, 4.0 * batch * 50257 * 2, count=gen_tokens),
    )
    return ModelSpec(name="GPT2", gemms=gemms, cpu_ops=cpu_ops, batch_size=batch)
