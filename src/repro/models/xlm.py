"""XLM text generation (Table II): 12 blocks, MLP 2048-8192-2048, batch 4.

XLM re-processes the whole growing sequence each iteration: the sequence
length starts at 1 and grows to 8, so the FC activation dimension is
N = batch x current_length = 4, 8, ..., 32.  This is the workload the paper
uses to motivate *dynamic* PIM-level selection: BG-level PIMs win while N is
small, then execution switches to DV-level once arithmetic saturates
(§V-B; also the multi-layout problem of §II for replication-based PIMs).

``prompt_tokens`` seeds the sequence with an existing context: without a KV
cache the whole ``prompt + generated`` sequence re-runs every FC layer each
iteration, so here (unlike GPT2) the prompt inflates the GEMM activation
dimension too.  The default of 0 reproduces the original Table II aggregate
exactly.
"""

from __future__ import annotations

from repro.models.layers import (
    CpuOp,
    ModelSpec,
    attention_cpu_ops,
    decoder_step_gemms,
)

__all__ = ["make_xlm"]


def make_xlm(
    batch: int = 4,
    max_len: int = 8,
    blocks: int = 12,
    prompt_tokens: int = 0,
) -> ModelSpec:
    d_model = 2048
    d_ff = 8192
    heads = 16
    gemms = []
    cpu_ops = []
    for step in range(1, max_len + 1):
        length = prompt_tokens + step
        n = batch * length  # whole sequence re-processed, no KV cache
        gemms.extend(
            decoder_step_gemms(d_model, d_ff, n, blocks, suffix=f"/len{step}")
        )
        cpu_ops.extend(
            attention_cpu_ops(
                f"xlm/len{step}", blocks, batch, heads, length, d_model // heads, d_model
            )
        )
    cpu_ops.append(
        CpuOp("xlm/sampling", 2.0 * batch * 95000, 4.0 * batch * 95000 * 2, count=max_len)
    )
    return ModelSpec(
        name="XLM", gemms=tuple(gemms), cpu_ops=tuple(cpu_ops), batch_size=batch
    )
