"""XLM text generation (Table II): 12 blocks, MLP 2048-8192-2048, batch 4.

XLM re-processes the whole growing sequence each iteration: the sequence
length starts at 1 and grows to 8, so the FC activation dimension is
N = batch x current_length = 4, 8, ..., 32.  This is the workload the paper
uses to motivate *dynamic* PIM-level selection: BG-level PIMs win while N is
small, then execution switches to DV-level once arithmetic saturates
(§V-B; also the multi-layout problem of §II for replication-based PIMs).
"""

from __future__ import annotations

from repro.core.gemm import GemmShape
from repro.models.layers import CpuOp, GemmInvocation, ModelSpec, attention_cpu_ops

__all__ = ["make_xlm"]


def make_xlm(batch: int = 4, max_len: int = 8, blocks: int = 12) -> ModelSpec:
    d_model = 2048
    d_ff = 8192
    heads = 16
    gemms = []
    cpu_ops = []
    for step in range(1, max_len + 1):
        n = batch * step  # whole sequence re-processed, no KV cache
        gemms.extend(
            [
                GemmInvocation(
                    f"proj-qkv/len{step}", GemmShape(d_model, d_model, n), count=3 * blocks
                ),
                GemmInvocation(
                    f"proj-out/len{step}", GemmShape(d_model, d_model, n), count=blocks
                ),
                GemmInvocation(
                    f"mlp-up/len{step}", GemmShape(d_ff, d_model, n), count=blocks
                ),
                GemmInvocation(
                    f"mlp-down/len{step}", GemmShape(d_model, d_ff, n), count=blocks
                ),
            ]
        )
        cpu_ops.extend(
            attention_cpu_ops(
                f"xlm/len{step}", blocks, batch, heads, step, d_model // heads, d_model
            )
        )
    cpu_ops.append(
        CpuOp("xlm/sampling", 2.0 * batch * 95000, 4.0 * batch * 95000 * 2, count=max_len)
    )
    return ModelSpec(
        name="XLM", gemms=tuple(gemms), cpu_ops=tuple(cpu_ops), batch_size=batch
    )
