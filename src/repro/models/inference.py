"""End-to-end inference engine (Fig. 8).

Runs a :class:`~repro.models.layers.ModelSpec` under one of seven backends:

==========  ============================================================
Backend     Meaning (paper notation)
==========  ============================================================
``cpu``     Measured-CPU model for every GEMM.
``icpu``    Idealized CPU: GEMMs at StepStone-CH timing, which maximally
            utilizes channel bandwidth (§V-B).
``pei``     PEI [3]: per-cache-block PIM instructions.
``ncho``    Naive Chopim [9]: GEMV-flow kernels.
``echo``    Chopim enhanced with StepStone block grouping.
``stp_dv``  Low-power StepStone (STP*): device-level PIMs only.
``stp``     StepStone: best PIM level per GEMM (STP).
==========  ============================================================

For every GEMM the engine picks the fastest among the backend's PIM options
and the CPU (the paper: "the best performing option is chosen for each
GEMM"), attributing time to the Fig. 8 stack components PIM_DV, PIM_BG,
CPU_GEMM, and CPU_Other.  Non-power-of-two layers run as power-of-two
partitions (§III fn. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.chopim import echo_gemm, ncho_gemm
from repro.baselines.cpu import CpuGemmModel
from repro.baselines.pei import pei_gemm
from repro.core.executor import execute_gemm
from repro.core.gemm import GemmShape
from repro.core.system import StepStoneSystem
from repro.mapping.xor_mapping import PimLevel
from repro.models.bert import make_bert
from repro.models.dlrm import make_dlrm_rm3
from repro.models.gpt2 import make_gpt2
from repro.models.layers import ModelSpec, pow2_partition
from repro.models.xlm import make_xlm

__all__ = ["BACKENDS", "InferenceEngine", "InferenceResult", "all_models"]

BACKENDS: Tuple[str, ...] = ("cpu", "icpu", "pei", "ncho", "echo", "stp_dv", "stp")

_DRAM_HZ = 1.2e9


@dataclass
class InferenceResult:
    """Fig. 8 stack for one (model, backend) pair; times in seconds."""

    model: str
    backend: str
    pim_dv_s: float = 0.0
    pim_bg_s: float = 0.0
    cpu_gemm_s: float = 0.0
    cpu_other_s: float = 0.0
    level_switches: int = 0  # GEMMs that ran at BG while others ran DV etc.

    @property
    def total_s(self) -> float:
        return self.pim_dv_s + self.pim_bg_s + self.cpu_gemm_s + self.cpu_other_s

    def normalized_to(self, ref: "InferenceResult") -> Dict[str, float]:
        """Stack components normalized to another result's total (Fig. 8)."""
        t = ref.total_s
        return {
            "PIM_DV": self.pim_dv_s / t,
            "PIM_BG": self.pim_bg_s / t,
            "CPU_GEMM": self.cpu_gemm_s / t,
            "CPU_Other": self.cpu_other_s / t,
            "total": self.total_s / t,
        }


def all_models() -> Dict[str, ModelSpec]:
    """The four Table II inference workloads."""
    return {
        "DLRM": make_dlrm_rm3(),
        "GPT2": make_gpt2(),
        "XLM": make_xlm(),
        "BERT": make_bert(),
    }


class InferenceEngine:
    """Evaluates ModelSpecs under the Fig. 8 backends with memoized tiles."""

    def __init__(
        self,
        system: Optional[StepStoneSystem] = None,
        cpu: Optional[CpuGemmModel] = None,
    ) -> None:
        self.system = system or StepStoneSystem.default()
        self.cpu = cpu or CpuGemmModel()
        self._tile_cache: Dict[Tuple, Tuple[str, float]] = {}

    # ------------------------------------------------------------------ #
    # Per-tile dispatch
    # ------------------------------------------------------------------ #

    def _pim_seconds(self, shape: GemmShape, backend: str, level: PimLevel) -> float:
        cfg, mapping = self.system.config, self.system.mapping
        if backend in ("stp", "stp_dv"):
            res = execute_gemm(cfg, mapping, shape, level)
        elif backend == "echo":
            res = echo_gemm(cfg, mapping, shape, level)
        elif backend == "ncho":
            res = ncho_gemm(cfg, mapping, shape, level)
        elif backend == "pei":
            res = pei_gemm(cfg, mapping, shape, level)
        elif backend == "icpu":
            res = execute_gemm(cfg, mapping, shape, PimLevel.CHANNEL)
        else:  # pragma: no cover - guarded by caller
            raise ValueError(backend)
        return res.breakdown.total / _DRAM_HZ

    def _tile_time(self, shape: GemmShape, backend: str) -> Tuple[str, float]:
        """(component, seconds) for one power-of-two tile under *backend*."""
        key = (shape.m, shape.k, shape.n, backend)
        hit = self._tile_cache.get(key)
        if hit is not None:
            return hit
        cpu_s = self.cpu.gemm_seconds(shape)
        if backend == "cpu":
            out = ("CPU_GEMM", cpu_s)
        elif backend == "icpu":
            out = ("CPU_GEMM", min(cpu_s, self._pim_seconds(shape, "icpu", PimLevel.CHANNEL)))
        else:
            options = [("CPU_GEMM", cpu_s)]
            levels = (
                (PimLevel.DEVICE,)
                if backend == "stp_dv"
                else (PimLevel.DEVICE, PimLevel.BANKGROUP)
            )
            for lvl in levels:
                try:
                    t = self._pim_seconds(shape, backend, lvl)
                except ValueError:
                    continue  # infeasible at this level (scratchpad)
                comp = "PIM_BG" if lvl is PimLevel.BANKGROUP else "PIM_DV"
                options.append((comp, t))
            out = min(options, key=lambda o: o[1])
        self._tile_cache[key] = out
        return out

    # ------------------------------------------------------------------ #
    # Whole-model evaluation
    # ------------------------------------------------------------------ #

    def run(self, spec: ModelSpec, backend: str) -> InferenceResult:
        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
        res = InferenceResult(model=spec.name, backend=backend)
        components_seen = set()
        for inv in spec.gemms:
            for tile in pow2_partition(inv.shape):
                comp, sec = self._tile_time(tile, backend)
                total = sec * inv.count
                if comp == "PIM_DV":
                    res.pim_dv_s += total
                elif comp == "PIM_BG":
                    res.pim_bg_s += total
                else:
                    res.cpu_gemm_s += total
                components_seen.add(comp)
        if "PIM_DV" in components_seen and "PIM_BG" in components_seen:
            res.level_switches = 1
        res.cpu_other_s = spec.cpu_other_seconds(self.cpu.config)
        return res

    def run_all(self, spec: ModelSpec) -> Dict[str, InferenceResult]:
        return {b: self.run(spec, b) for b in BACKENDS}
