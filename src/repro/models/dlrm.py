"""DLRM RM3 (Table II): Bottom MLP 2560-512-32, Top MLP 512-128-1, batch 4.

The paper notes DLRM's execution time is dominated by a single FC layer
(92%) — the 2560 -> 512 bottom-MLP GEMM — with embedding lookups and feature
interaction staying on the CPU (CPU_Other).
"""

from __future__ import annotations

from repro.core.gemm import GemmShape
from repro.models.layers import CpuOp, GemmInvocation, ModelSpec

__all__ = ["make_dlrm_rm3"]


def make_dlrm_rm3(batch: int = 4) -> ModelSpec:
    """Build the RM3-class recommendation model of Table II."""
    gemms = (
        # Bottom MLP: 2560 -> 512 -> 32 (weights are [out x in]).
        GemmInvocation("bottom-fc1", GemmShape(512, 2560, batch)),
        GemmInvocation("bottom-fc2", GemmShape(32, 512, batch)),
        # Top MLP operates on the interaction output: 512 -> 128 -> 1.
        GemmInvocation("top-fc1", GemmShape(128, 512, batch)),
        GemmInvocation("top-fc2", GemmShape(1, 128, batch)),
    )
    # RM3 is MLP-heavy (vs. the embedding-heavy RM1/RM2 classes): a modest
    # number of embedding-table gathers plus the pairwise feature
    # interaction, both CPU-resident.
    n_tables = 10
    emb_dim = 64
    lookups_per_table = 20
    emb_bytes = 4.0 * batch * n_tables * lookups_per_table * emb_dim
    interact_flops = 2.0 * batch * (n_tables + 1) ** 2 * emb_dim
    cpu_ops = (
        CpuOp("embedding-gather", 0.0, emb_bytes * 2, count=1),
        CpuOp("feature-interaction", interact_flops, emb_bytes, count=1),
        CpuOp("sigmoid+concat", 10.0 * batch, 4.0 * batch * 512 * 2, count=1),
    )
    return ModelSpec(name="DLRM", gemms=gemms, cpu_ops=cpu_ops, batch_size=batch)
