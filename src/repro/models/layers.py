"""Model building blocks: GEMM invocations and CPU-resident ops.

A model is a bag of *GEMM invocations* (the FC/projection layers StepStone
accelerates) plus *CPU ops* (everything Fig. 8 files under CPU_Other:
embedding lookups, batched attention GEMMs, softmax, GELU, layer norm,
concatenation/reshape).  CPU ops are modelled by their FLOP and byte counts
against the calibrated CPU parameters plus a per-kernel dispatch overhead —
they are small but numerous, which is exactly their role in the paper's
end-to-end stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.baselines.cpu import CpuConfig, XEON_8280
from repro.core.gemm import GemmShape

__all__ = ["GemmInvocation", "CpuOp", "ModelSpec", "pow2_partition"]


@dataclass(frozen=True)
class GemmInvocation:
    """One FC/projection GEMM, repeated ``count`` times per inference."""

    name: str
    shape: GemmShape
    count: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")


@dataclass(frozen=True)
class CpuOp:
    """A CPU-resident op modelled by its arithmetic and traffic volume."""

    name: str
    flops: float
    bytes_moved: float
    count: int = 1

    def seconds(self, cpu: CpuConfig = XEON_8280) -> float:
        compute = self.flops / (cpu.peak_flops * 0.25)  # small-kernel efficiency
        mem = self.bytes_moved / (cpu.peak_bw_gbps * 1e9 * 0.5)
        return self.count * (max(compute, mem) + cpu.overhead_s)


@dataclass(frozen=True)
class ModelSpec:
    """A complete inference workload."""

    name: str
    gemms: Tuple[GemmInvocation, ...]
    cpu_ops: Tuple[CpuOp, ...] = ()
    batch_size: int = 4

    @property
    def total_gemm_flops(self) -> float:
        return sum(g.shape.flops * g.count for g in self.gemms)

    @property
    def total_weight_bytes(self) -> float:
        return sum(g.shape.weight_bytes * g.count for g in self.gemms)

    def cpu_other_seconds(self, cpu: CpuConfig = XEON_8280) -> float:
        return sum(op.seconds(cpu) for op in self.cpu_ops)


def pow2_partition(shape: GemmShape, min_dim: int = 16) -> List[GemmShape]:
    """Decompose a GEMM with non-power-of-two M/K into power-of-two tiles.

    The paper (§III fn. 2) pads or partitions; partitioning is the
    cost-faithful choice for shapes like GPT2's 1600/6400 dimensions (binary
    decomposition: 1600 -> 1024 + 512 + 64).  Dimensions below ``min_dim``
    round up instead of splitting further.
    """

    def split(x: int) -> List[int]:
        parts: List[int] = []
        while x > 0:
            p = 1 << (x.bit_length() - 1)
            if x < min_dim:
                parts.append(min_dim)
                break
            parts.append(p)
            x -= p
        return parts

    return [
        GemmShape(m, k, shape.n) for m in split(shape.m) for k in split(shape.k)
    ]


def attention_cpu_ops(
    name: str,
    blocks: int,
    batch: int,
    heads: int,
    seq: int,
    head_dim: int,
    d_model: int,
) -> List[CpuOp]:
    """CPU_Other ops of one transformer stack (batched GEMMs, softmax, etc.).

    These ops stay on the CPU in every Fig. 8 configuration: per-head
    attention score/context batched GEMMs (tiny, cache-resident), softmax,
    GELU on the MLP hidden activations, two layer-norms, and the residual
    reshape/stack data movement.
    """
    scores_flops = 2.0 * batch * heads * seq * seq * head_dim
    softmax_bytes = 4.0 * batch * heads * seq * seq * 3
    context_flops = 2.0 * batch * heads * seq * seq * head_dim
    gelu_bytes = 4.0 * batch * seq * 4 * d_model * 2
    norm_bytes = 4.0 * batch * seq * d_model * 4
    reorg_bytes = 4.0 * batch * seq * d_model * 4
    return [
        CpuOp(f"{name}/attn-scores", scores_flops, softmax_bytes, count=blocks),
        CpuOp(f"{name}/attn-context", context_flops, softmax_bytes, count=blocks),
        CpuOp(f"{name}/softmax", 5.0 * batch * heads * seq * seq, softmax_bytes, count=blocks),
        CpuOp(f"{name}/gelu", 8.0 * batch * seq * 4 * d_model, gelu_bytes, count=blocks),
        CpuOp(f"{name}/layernorm", 5.0 * batch * seq * d_model, norm_bytes, count=2 * blocks),
        CpuOp(f"{name}/reorg", 0.0, reorg_bytes, count=blocks),
    ]
