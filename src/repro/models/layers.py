"""Model building blocks: GEMM invocations and CPU-resident ops.

A model is a bag of *GEMM invocations* (the FC/projection layers StepStone
accelerates) plus *CPU ops* (everything Fig. 8 files under CPU_Other:
embedding lookups, batched attention GEMMs, softmax, GELU, layer norm,
concatenation/reshape).  CPU ops are modelled by their FLOP and byte counts
against the calibrated CPU parameters plus a per-kernel dispatch overhead —
they are small but numerous, which is exactly their role in the paper's
end-to-end stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.baselines.cpu import CpuConfig, XEON_8280
from repro.core.gemm import GemmShape

__all__ = [
    "GemmInvocation",
    "CpuOp",
    "ModelSpec",
    "pow2_partition",
    "attention_cpu_ops",
    "decoder_step_gemms",
    "decode_attention_cpu_ops",
]


@dataclass(frozen=True)
class GemmInvocation:
    """One FC/projection GEMM, repeated ``count`` times per inference."""

    name: str
    shape: GemmShape
    count: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("count must be positive")


@dataclass(frozen=True)
class CpuOp:
    """A CPU-resident op modelled by its arithmetic and traffic volume."""

    name: str
    flops: float
    bytes_moved: float
    count: int = 1

    def seconds(self, cpu: CpuConfig = XEON_8280) -> float:
        compute = self.flops / (cpu.peak_flops * 0.25)  # small-kernel efficiency
        mem = self.bytes_moved / (cpu.peak_bw_gbps * 1e9 * 0.5)
        return self.count * (max(compute, mem) + cpu.overhead_s)


@dataclass(frozen=True)
class ModelSpec:
    """A complete inference workload."""

    name: str
    gemms: Tuple[GemmInvocation, ...]
    cpu_ops: Tuple[CpuOp, ...] = ()
    batch_size: int = 4

    @property
    def total_gemm_flops(self) -> float:
        return sum(g.shape.flops * g.count for g in self.gemms)

    @property
    def total_weight_bytes(self) -> float:
        return sum(g.shape.weight_bytes * g.count for g in self.gemms)

    def cpu_other_seconds(self, cpu: CpuConfig = XEON_8280) -> float:
        return sum(op.seconds(cpu) for op in self.cpu_ops)


def pow2_partition(shape: GemmShape, min_dim: int = 16) -> List[GemmShape]:
    """Decompose a GEMM with non-power-of-two M/K into power-of-two tiles.

    The paper (§III fn. 2) pads or partitions; partitioning is the
    cost-faithful choice for shapes like GPT2's 1600/6400 dimensions (binary
    decomposition: 1600 -> 1024 + 512 + 64).  Dimensions below ``min_dim``
    round up instead of splitting further.
    """

    def split(x: int) -> List[int]:
        parts: List[int] = []
        while x > 0:
            p = 1 << (x.bit_length() - 1)
            if x < min_dim:
                parts.append(min_dim)
                break
            parts.append(p)
            x -= p
        return parts

    return [
        GemmShape(m, k, shape.n) for m in split(shape.m) for k in split(shape.k)
    ]


def decoder_step_gemms(
    d_model: int,
    d_ff: int,
    n: int,
    blocks: int,
    repeat: int = 1,
    suffix: str = "",
) -> List[GemmInvocation]:
    """The four FC/projection GEMMs of one decoder-stack token step.

    Every autoregressive transformer in this repo runs the same four
    weight matrices per block and per generated token — QKV projection
    (three matrices, hence the 3x count), output projection, and the two
    MLP layers — at activation dimension ``n``.  This helper is the one
    place that structure lives: :func:`repro.models.gpt2.make_gpt2`
    aggregates ``repeat=gen_tokens`` steps into one spec,
    :func:`repro.models.xlm.make_xlm` emits one call per sequence length,
    and ``repro.genai`` builds its per-token step spec from a single call.

    Args:
        d_model: Model (residual) width.
        d_ff: MLP hidden width.
        n: Activation dimension (batch x tokens processed this step).
        blocks: Decoder blocks in the stack.
        repeat: How many identical steps to fold into the counts.
        suffix: Appended to each invocation name (e.g. ``"/len3"``).

    Returns:
        The four invocations, QKV first, with counts scaled by
        ``blocks * repeat``.
    """
    total = blocks * repeat
    return [
        GemmInvocation(
            f"proj-qkv{suffix}", GemmShape(d_model, d_model, n), count=3 * total
        ),
        GemmInvocation(
            f"proj-out{suffix}", GemmShape(d_model, d_model, n), count=total
        ),
        GemmInvocation(f"mlp-up{suffix}", GemmShape(d_ff, d_model, n), count=total),
        GemmInvocation(f"mlp-down{suffix}", GemmShape(d_model, d_ff, n), count=total),
    ]


def attention_cpu_ops(
    name: str,
    blocks: int,
    batch: int,
    heads: int,
    seq: int,
    head_dim: int,
    d_model: int,
) -> List[CpuOp]:
    """CPU_Other ops of one transformer stack (batched GEMMs, softmax, etc.).

    These ops stay on the CPU in every Fig. 8 configuration: per-head
    attention score/context batched GEMMs (tiny, cache-resident), softmax,
    GELU on the MLP hidden activations, two layer-norms, and the residual
    reshape/stack data movement.
    """
    scores_flops = 2.0 * batch * heads * seq * seq * head_dim
    softmax_bytes = 4.0 * batch * heads * seq * seq * 3
    context_flops = 2.0 * batch * heads * seq * seq * head_dim
    gelu_bytes = 4.0 * batch * seq * 4 * d_model * 2
    norm_bytes = 4.0 * batch * seq * d_model * 4
    reorg_bytes = 4.0 * batch * seq * d_model * 4
    return [
        CpuOp(f"{name}/attn-scores", scores_flops, softmax_bytes, count=blocks),
        CpuOp(f"{name}/attn-context", context_flops, softmax_bytes, count=blocks),
        CpuOp(f"{name}/softmax", 5.0 * batch * heads * seq * seq, softmax_bytes, count=blocks),
        CpuOp(f"{name}/gelu", 8.0 * batch * seq * 4 * d_model, gelu_bytes, count=blocks),
        CpuOp(f"{name}/layernorm", 5.0 * batch * seq * d_model, norm_bytes, count=2 * blocks),
        CpuOp(f"{name}/reorg", 0.0, reorg_bytes, count=blocks),
    ]


def decode_attention_cpu_ops(
    name: str,
    blocks: int,
    heads: int,
    head_dim: int,
    d_model: int,
    n_tokens: int,
    total_context: int,
) -> List[CpuOp]:
    """CPU_Other ops of one KV-cached decode step over a batch of sequences.

    The decode-time counterpart of :func:`attention_cpu_ops`: with the KV
    cache holding every previous token, each sequence attends one fresh
    query against its cached context, so score/context work is *linear*
    in context length, not quadratic.  The batch is folded into op
    volumes (``n_tokens`` fresh tokens, ``total_context`` cached tokens
    across the whole batch) while the per-kernel dispatch overhead stays
    ``count=blocks`` — batching amortizes launches, which is exactly why
    serving wider decode batches is cheaper per token.

    Args:
        name: Op-name prefix.
        blocks: Decoder blocks (the dispatch count per op type).
        heads: Attention heads.
        head_dim: Per-head dimension.
        d_model: Model width.
        n_tokens: Fresh tokens this step (one per active sequence).
        total_context: Summed context length (cached + current token)
            across the batch — what the score/context GEMVs traverse.

    Returns:
        The decode-step op list (scores, context, softmax, GELU, norms,
        reorg), each with ``count=blocks``.
    """
    scores_flops = 2.0 * heads * total_context * head_dim
    scores_bytes = 4.0 * heads * total_context * 3
    gelu_bytes = 4.0 * n_tokens * 4 * d_model * 2
    norm_bytes = 4.0 * n_tokens * d_model * 4
    reorg_bytes = 4.0 * n_tokens * d_model * 4
    return [
        CpuOp(f"{name}/attn-scores", scores_flops, scores_bytes, count=blocks),
        CpuOp(f"{name}/attn-context", scores_flops, scores_bytes, count=blocks),
        CpuOp(f"{name}/softmax", 5.0 * heads * total_context, scores_bytes, count=blocks),
        CpuOp(f"{name}/gelu", 8.0 * n_tokens * 4 * d_model, gelu_bytes, count=blocks),
        CpuOp(f"{name}/layernorm", 5.0 * n_tokens * d_model, norm_bytes, count=2 * blocks),
        CpuOp(f"{name}/reorg", 0.0, reorg_bytes, count=blocks),
    ]
