"""ASCII chart rendering for experiment rows.

The paper's figures are stacked bars (Figs. 6, 8, 10, 11, 12, 14), grouped
bars (Figs. 9, 13), and log-log rooflines (Figs. 1, 7).  These helpers
render all three shapes in a terminal so ``python -m repro.experiments
<id> --chart`` shows the figure, not just its table.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "stacked_bars",
    "grouped_bars",
    "line_plot",
    "scaling_plot",
    "timeline_plot",
    "cost_bars",
    "phase_breakdown",
]

_GLYPHS = "#=+*o%@&"


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-2:
        return f"{v:.2e}"
    return f"{v:.2f}"


def stacked_bars(
    rows: Sequence[Dict[str, Any]],
    category_key: str,
    component_keys: Sequence[str],
    width: int = 60,
    title: str = "",
) -> str:
    """Horizontal stacked bars, one per row (Fig. 6/8-style).

    Component magnitudes scale to the largest row total; every component
    gets a distinct fill glyph, listed in the legend.
    """
    if not rows:
        return "(no data)"
    totals = [sum(float(r.get(k, 0.0) or 0.0) for k in component_keys) for r in rows]
    peak = max(totals) or 1.0
    label_w = max(len(str(r.get(category_key, ""))) for r in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={k}" for i, k in enumerate(component_keys)
    )
    lines.append(f"legend: {legend}")
    for r, total in zip(rows, totals):
        bar = ""
        acc_cells = 0
        acc_frac = 0.0
        for i, k in enumerate(component_keys):
            v = float(r.get(k, 0.0) or 0.0)
            acc_frac += v / peak * width
            cells = int(round(acc_frac)) - acc_cells
            bar += _GLYPHS[i % len(_GLYPHS)] * max(0, cells)
            acc_cells += max(0, cells)
        label = str(r.get(category_key, "")).ljust(label_w)
        lines.append(f"{label} |{bar.ljust(width)}| {_fmt(total)}")
    return "\n".join(lines)


def grouped_bars(
    rows: Sequence[Dict[str, Any]],
    category_key: str,
    value_key: str,
    width: int = 50,
    title: str = "",
) -> str:
    """One horizontal bar per row (Fig. 13-style speedup charts)."""
    if not rows:
        return "(no data)"
    vals = [float(r.get(value_key, 0.0) or 0.0) for r in rows]
    peak = max(vals) or 1.0
    label_w = max(len(str(r.get(category_key, ""))) for r in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    for r, v in zip(rows, vals):
        cells = int(round(v / peak * width))
        label = str(r.get(category_key, "")).ljust(label_w)
        lines.append(f"{label} |{('#' * cells).ljust(width)}| {_fmt(v)}")
    return "\n".join(lines)


def line_plot(
    rows: Sequence[Dict[str, Any]],
    x_key: str,
    y_keys: Sequence[str],
    width: int = 64,
    height: int = 20,
    log_x: bool = True,
    log_y: bool = True,
    title: str = "",
) -> str:
    """Scatter plot of several series on a shared (optionally log) grid —
    the roofline shape of Figs. 1 and 7."""
    if not rows:
        return "(no data)"

    def tx(v: float, log: bool) -> Optional[float]:
        if v is None or (isinstance(v, float) and v != v):
            return None
        if log:
            return math.log10(v) if v > 0 else None
        return float(v)

    pts = []
    for si, yk in enumerate(y_keys):
        for r in rows:
            x = tx(float(r.get(x_key, 0.0) or 0.0), log_x)
            yv = r.get(yk)
            y = tx(float(yv), log_y) if yv is not None else None
            if x is not None and y is not None:
                pts.append((x, y, si))
    if not pts:
        return "(no plottable data)"
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xr = (x1 - x0) or 1.0
    yr = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, si in pts:
        col = int((x - x0) / xr * (width - 1))
        row = height - 1 - int((y - y0) / yr * (height - 1))
        grid[row][col] = _GLYPHS[si % len(_GLYPHS)]
    lines: List[str] = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{_GLYPHS[i % len(_GLYPHS)]}={k}" for i, k in enumerate(y_keys))
    lines.append(f"legend: {legend}   (x: {x_key}{' log' if log_x else ''})")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def scaling_plot(
    rows: Sequence[Dict[str, Any]],
    x_key: str,
    y_keys: Sequence[str],
    width: int = 64,
    height: int = 16,
    title: str = "",
) -> str:
    """Linear-axes scaling curve (nodes vs sustained throughput).

    The fleet-sizing shape of the ``serve-cluster`` experiment: a
    linear-linear :func:`line_plot` grid plus a per-x value table, so both
    the curve's knee and the exact series values are readable in a
    terminal.
    """
    if not rows:
        return "(no data)"
    grid = line_plot(
        rows,
        x_key=x_key,
        y_keys=y_keys,
        width=width,
        height=height,
        log_x=False,
        log_y=False,
        title=title,
    )
    header = f"{x_key:>8} " + " ".join(f"{k:>12}" for k in y_keys)
    table = [header]
    for r in rows:
        cells = " ".join(
            f"{_fmt(float(r[k])):>12}" if r.get(k) is not None else f"{'-':>12}"
            for k in y_keys
        )
        table.append(f"{str(r.get(x_key, '')):>8} {cells}")
    return grid + "\n" + "\n".join(table)


def cost_bars(
    rows: Sequence[Dict[str, Any]],
    category_key: str,
    series_keys: Sequence[str],
    width: int = 46,
    title: str = "",
    unit: str = "$/hr",
) -> str:
    """Grouped cost bars: one block per row, one bar per series.

    The fleet-economics shape of the ``serve-hetero`` experiment: each
    traffic regime is a block, each fleet option (homogeneous StepStone,
    homogeneous GPU, cost-optimal mix) a labelled bar, so the cheapest
    option per regime is readable at a glance.  Missing/NaN series (an
    infeasible fleet) render as ``infeasible``.
    """
    if not rows:
        return "(no data)"
    vals: List[float] = []
    for r in rows:
        for k in series_keys:
            v = r.get(k)
            if v is not None and float(v) == float(v):
                vals.append(float(v))
    peak = max(vals) if vals else 1.0
    label_w = max(len(k) for k in series_keys)
    lines: List[str] = []
    if title:
        lines.append(title)
    for r in rows:
        lines.append(f"{r.get(category_key, '')}:")
        for k in series_keys:
            v = r.get(k)
            label = f"  {k.ljust(label_w)}"
            if v is None or float(v) != float(v):
                lines.append(f"{label} |{' ' * width}| infeasible")
                continue
            cells = int(round(float(v) / peak * width)) if peak else 0
            lines.append(
                f"{label} |{('#' * cells).ljust(width)}| {float(v):.2f} {unit}"
            )
    return "\n".join(lines)


def phase_breakdown(
    rows: Sequence[Dict[str, Any]],
    phase_key: str = "phase",
    count_key: str = "count",
    total_key: str = "total_s",
    width: int = 50,
    title: str = "",
) -> str:
    """Per-phase time breakdown: one bar per lifecycle phase.

    The observability shape of the ``serve-observe`` experiment: each row
    is one span phase (``queued``, ``serve``, ``prefill-pass``, ...) with
    its span count and exact summed duration; bars scale to the largest
    phase and each line states the phase's share of the summed total, so
    where the run's simulated time went is readable at a glance.
    """
    if not rows:
        return "(no data)"
    vals = [float(r.get(total_key, 0.0) or 0.0) for r in rows]
    peak = max(vals) or 1.0
    grand = sum(vals) or 1.0
    label_w = max(len(str(r.get(phase_key, ""))) for r in rows)
    count_w = max(len(str(r.get(count_key, 0))) for r in rows)
    lines: List[str] = []
    if title:
        lines.append(title)
    for r, v in zip(rows, vals):
        label = str(r.get(phase_key, "")).ljust(label_w)
        n = str(r.get(count_key, 0)).rjust(count_w)
        cells = int(round(v / peak * width))
        lines.append(
            f"{label} x{n} |{('#' * cells).ljust(width)}| "
            f"{_fmt(v)}s ({v / grand * 100:.1f}%)"
        )
    return "\n".join(lines)


def timeline_plot(
    rows: Sequence[Dict[str, Any]],
    x_key: str,
    y_keys: Sequence[str],
    width: int = 64,
    height: int = 14,
    title: str = "",
) -> str:
    """Mixed-unit time series on one grid (the autoscaler shape).

    An autoscale timeline overlays series with incompatible units — node
    counts, offered req/s, windowed p99 milliseconds — so each series is
    normalized to its own [min, max] before plotting, and the legend states
    every series' range.  NaN points (e.g. the p99 of a window that
    completed nothing) are simply skipped.
    """
    if not rows:
        return "(no data)"
    lines: List[str] = []
    if title:
        lines.append(title)
    spans: Dict[str, tuple] = {}
    for yk in y_keys:
        vals = [
            float(r[yk])
            for r in rows
            if r.get(yk) is not None and float(r[yk]) == float(r[yk])
        ]
        if vals:
            spans[yk] = (min(vals), max(vals))
    for i, yk in enumerate(y_keys):
        lo, hi = spans.get(yk, (math.nan, math.nan))
        lines.append(
            f"legend: {_GLYPHS[i % len(_GLYPHS)]}={yk} "
            f"[{_fmt(lo)} .. {_fmt(hi)}]"
        )
    xs = [float(r.get(x_key, 0.0) or 0.0) for r in rows]
    x0, x1 = min(xs), max(xs)
    xr = (x1 - x0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for r, x in zip(rows, xs):
        col = int((x - x0) / xr * (width - 1))
        for si, yk in enumerate(y_keys):
            if yk not in spans or r.get(yk) is None:
                continue
            v = float(r[yk])
            if v != v:  # NaN: window with no signal
                continue
            lo, hi = spans[yk]
            frac = (v - lo) / (hi - lo) if hi > lo else 0.5
            row_i = height - 1 - int(frac * (height - 1))
            grid[row_i][col] = _GLYPHS[si % len(_GLYPHS)]
    for g in grid:
        lines.append("|" + "".join(g) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(f"x: {x_key} [{_fmt(x0)} .. {_fmt(x1)}]")
    return "\n".join(lines)
