"""Terminal rendering of experiment results as figure-shaped charts."""

from repro.reporting.charts import (
    grouped_bars,
    line_plot,
    scaling_plot,
    stacked_bars,
    timeline_plot,
)

__all__ = [
    "grouped_bars",
    "line_plot",
    "scaling_plot",
    "stacked_bars",
    "timeline_plot",
]
