"""Terminal rendering of experiment results as figure-shaped charts."""

from repro.reporting.charts import (
    cost_bars,
    grouped_bars,
    line_plot,
    phase_breakdown,
    scaling_plot,
    stacked_bars,
    timeline_plot,
)

__all__ = [
    "cost_bars",
    "grouped_bars",
    "line_plot",
    "phase_breakdown",
    "scaling_plot",
    "stacked_bars",
    "timeline_plot",
]
